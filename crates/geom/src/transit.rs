//! The paper's transitive distance metrics (Definitions 1–3, §4.2.1):
//! lower and upper bounds of `dis(p, s) + dis(s, r)` over the points `s`
//! of an R-tree node's MBR, used by the Hybrid-NN branch-and-bound search.

use crate::{Point, Rect, Segment};

/// `MinTransDist(p, M, r)` — Definition 1.
///
/// The minimum possible transitive distance `dis(p, s) + dis(s, r)` over
/// all points `s` of the (filled) rectangle `M`: a tight **lower bound**
/// for the transitive distance through any data point inside the MBR, used
/// to prune nodes that cannot contain the answer.
///
/// Implementation follows the paper's three cases (Lemma 1), unified via
/// the classical mirror trick on each side:
///
/// 1. the segment `p–r` intersects `M` → `dis(p, r)`;
/// 2. otherwise the optimum lies on the boundary, at the reflection-path
///    touch point of some side (interior of a side), or
/// 3. at one of the four vertices — both covered by minimizing the convex
///    per-side objective with clamping.
pub fn min_trans_dist(p: Point, m: &Rect, r: Point) -> f64 {
    // Case 1: the straight path already passes through the rectangle.
    if Segment::new(p, r).intersects_rect(m) {
        return p.dist(r);
    }
    // Cases 2 and 3: minimize over the four sides. dis(p,s)+dis(s,r) is
    // convex in s, so the per-side minimum (reflection, clamped to the
    // side) is exact, and vertices are covered by the clamping.
    let mut best = f64::INFINITY;
    for side in m.sides() {
        let d = min_trans_dist_via_segment(p, &side, r);
        if d < best {
            best = d;
        }
    }
    best
}

/// The minimum of `dis(p, s) + dis(s, r)` over points `s` of the segment.
///
/// The objective restricted to the segment's supporting line is convex with
/// its minimum at the mirror-trick touch point; clamping that point's
/// parameter to the segment yields the exact constrained minimum.
pub fn min_trans_dist_via_segment(p: Point, seg: &Segment, r: Point) -> f64 {
    let a = seg.a;
    let ab = seg.b - seg.a;
    let len2 = ab.dot(ab);
    if len2 == 0.0 {
        return p.dist(a) + a.dist(r);
    }
    let cp = ab.cross(p - a);
    let cr = ab.cross(r - a);

    let t = if cp == 0.0 && cr == 0.0 {
        // Fully collinear: the optimum on the line is any point of the
        // interval between the projections of p and r; clamp that interval
        // onto the segment's [0, 1] parameter range.
        let tp = (p - a).dot(ab) / len2;
        let tr = (r - a).dot(ab) / len2;
        let (lo, hi) = if tp <= tr { (tp, tr) } else { (tr, tp) };
        if hi < 0.0 {
            0.0
        } else if lo > 1.0 {
            1.0
        } else {
            lo.max(0.0)
        }
    } else {
        // Mirror r across the supporting line when p and r lie on the same
        // side; afterwards p and q are on opposite sides (or on the line)
        // and the optimal line point is where p–q crosses the line.
        let q = if cp * cr > 0.0 { seg.reflect(r) } else { r };
        let cq = ab.cross(q - a);
        let denom = cp - cq;
        if denom == 0.0 {
            // p (and q) on the line itself: optimum at p's projection.
            (p - a).dot(ab) / len2
        } else {
            let s = cp / denom; // crossing parameter along p→q
            let ix = p.lerp(q, s);
            (ix - a).dot(ab) / len2
        }
    };
    let x = seg.at(t.clamp(0.0, 1.0));
    p.dist(x) + x.dist(r)
}

/// `MaxDist(p, ℓ, r)` — Definition 2.
///
/// A tight **upper bound** for the transitive distance `dis(p, s) +
/// dis(s, r)` over all points `s` of the segment `ℓ`: by convexity the
/// maximum is attained at one of the two endpoints (Lemma 2).
#[inline]
pub fn max_dist(p: Point, seg: &Segment, r: Point) -> f64 {
    let da = p.dist(seg.a) + seg.a.dist(r);
    let db = p.dist(seg.b) + seg.b.dist(r);
    da.max(db)
}

/// `MinMaxTransDist(p, M, r)` — Definition 3.
///
/// The minimum over the four sides of `M` of [`max_dist`]. By the MBR face
/// property (every face of an R-tree node's MBR touches at least one data
/// point), some data point `s` inside the node satisfies
/// `dis(p, s) + dis(s, r) ≤ MinMaxTransDist(p, M, r)` (Lemma 3) — a
/// guaranteed-achievable **upper bound** used to tighten the Hybrid-NN
/// search before visiting the node.
pub fn min_max_trans_dist(p: Point, m: &Rect, r: Point) -> f64 {
    let mut best = f64::INFINITY;
    for side in m.sides() {
        let d = max_dist(p, &side, r);
        if d < best {
            best = d;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transitive_dist;

    const EPS: f64 = 1e-9;

    /// Brute-force reference: sample the boundary densely and also ternary
    /// search each side (the objective is convex per side).
    fn min_trans_dist_ref(p: Point, m: &Rect, r: Point) -> f64 {
        if Segment::new(p, r).intersects_rect(m) {
            return p.dist(r);
        }
        let mut best = f64::INFINITY;
        for side in m.sides() {
            let (mut lo, mut hi) = (0.0f64, 1.0f64);
            for _ in 0..200 {
                let m1 = lo + (hi - lo) / 3.0;
                let m2 = hi - (hi - lo) / 3.0;
                let f1 = transitive_dist(p, side.at(m1), r);
                let f2 = transitive_dist(p, side.at(m2), r);
                if f1 < f2 {
                    hi = m2;
                } else {
                    lo = m1;
                }
            }
            best = best.min(transitive_dist(p, side.at(lo), r));
        }
        best
    }

    #[test]
    fn case1_segment_through_rect() {
        // Paper Fig. 5 case 1: p and r on opposite sides of the MBR.
        let m = Rect::from_coords(2.0, 2.0, 4.0, 4.0);
        let p = Point::new(0.0, 3.0);
        let r = Point::new(6.0, 3.0);
        assert!((min_trans_dist(p, &m, r) - 6.0).abs() < EPS);
    }

    #[test]
    fn case1_endpoint_inside_rect() {
        let m = Rect::from_coords(0.0, 0.0, 4.0, 4.0);
        let p = Point::new(1.0, 1.0); // inside
        let r = Point::new(9.0, 1.0); // outside
        assert!((min_trans_dist(p, &m, r) - 8.0).abs() < EPS);
    }

    #[test]
    fn case2_reflection_touch() {
        // p and r both below the rectangle: the optimal path bounces off
        // the bottom side (y = 2). Mirror r across y = 2 → (4, 3);
        // |p − r'| = sqrt(16 + 4) = sqrt(20).
        let m = Rect::from_coords(0.0, 2.0, 5.0, 4.0);
        let p = Point::new(0.0, 1.0);
        let r = Point::new(4.0, 1.0);
        let expect = 20.0f64.sqrt();
        assert!((min_trans_dist(p, &m, r) - expect).abs() < EPS);
    }

    #[test]
    fn case3_vertex_optimum() {
        // p and r "wrap around" a corner: the optimum is the corner itself.
        let m = Rect::from_coords(2.0, 2.0, 4.0, 4.0);
        let p = Point::new(0.0, 2.0);
        let r = Point::new(2.0, 0.0);
        let corner = Point::new(2.0, 2.0);
        let expect = transitive_dist(p, corner, r);
        assert!((min_trans_dist(p, &m, r) - expect).abs() < EPS);
        assert!((min_trans_dist_ref(p, &m, r) - expect).abs() < 1e-6);
    }

    #[test]
    fn degenerate_point_mbr() {
        let s = Point::new(3.0, 4.0);
        let m = Rect::point(s);
        let p = Point::ORIGIN;
        let r = Point::new(6.0, 8.0);
        assert!((min_trans_dist(p, &m, r) - 10.0).abs() < EPS);
        assert!((min_max_trans_dist(p, &m, r) - 10.0).abs() < EPS);
    }

    #[test]
    fn degenerate_line_mbr() {
        // Zero-height MBR (all points on a horizontal line).
        let m = Rect::from_coords(1.0, 2.0, 5.0, 2.0);
        let p = Point::new(0.0, 0.0);
        let r = Point::new(6.0, 0.0);
        let got = min_trans_dist(p, &m, r);
        let expect = min_trans_dist_ref(p, &m, r);
        assert!((got - expect).abs() < 1e-6, "got {got}, expect {expect}");
    }

    #[test]
    fn matches_reference_on_grid() {
        let m = Rect::from_coords(-1.0, -0.5, 2.0, 1.5);
        for px in [-4.0, -1.5, 0.0, 3.0] {
            for py in [-3.0, 0.5, 2.5] {
                for rx in [-3.0, 0.5, 4.0] {
                    for ry in [-2.0, 1.0, 3.0] {
                        let p = Point::new(px, py);
                        let r = Point::new(rx, ry);
                        let got = min_trans_dist(p, &m, r);
                        let expect = min_trans_dist_ref(p, &m, r);
                        assert!(
                            (got - expect).abs() < 1e-6,
                            "p={p:?} r={r:?}: got {got}, expect {expect}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn lower_bound_holds_for_interior_points() {
        let m = Rect::from_coords(0.0, 0.0, 2.0, 2.0);
        let p = Point::new(-3.0, 1.0);
        let r = Point::new(5.0, -2.0);
        let lb = min_trans_dist(p, &m, r);
        for i in 0..=10 {
            for j in 0..=10 {
                let s = Point::new(0.2 * i as f64, 0.2 * j as f64);
                assert!(transitive_dist(p, s, r) >= lb - EPS);
            }
        }
    }

    #[test]
    fn max_dist_is_endpoint_max() {
        let seg = Segment::new(Point::new(0.0, 0.0), Point::new(4.0, 0.0));
        let p = Point::new(0.0, 3.0);
        let r = Point::new(4.0, 3.0);
        // f(a) = 3 + 5 = 8; f(b) = 5 + 3 = 8.
        assert!((max_dist(p, &seg, r) - 8.0).abs() < EPS);
        // Every interior point gives at most 8 (convexity).
        for i in 0..=20 {
            let s = seg.at(i as f64 / 20.0);
            assert!(transitive_dist(p, s, r) <= 8.0 + EPS);
        }
    }

    #[test]
    fn min_max_trans_dist_is_achievable_upper_bound() {
        let m = Rect::from_coords(0.0, 0.0, 3.0, 2.0);
        let p = Point::new(-2.0, 1.0);
        let r = Point::new(6.0, 1.0);
        let ub = min_max_trans_dist(p, &m, r);
        let lb = min_trans_dist(p, &m, r);
        assert!(lb <= ub + EPS);
        // The bound must be attained by the worst endpoint of the best side.
        let attained = m
            .sides()
            .iter()
            .map(|s| max_dist(p, s, r))
            .fold(f64::INFINITY, f64::min);
        assert_eq!(ub, attained);
    }

    #[test]
    fn bounds_sandwich_every_side_point() {
        // For every sampled boundary point s: lb ≤ f(s); and ub ≥ min over
        // the *best side's* points (spot-checked via sampling).
        let m = Rect::from_coords(1.0, 1.0, 4.0, 3.0);
        let p = Point::new(-1.0, 0.0);
        let r = Point::new(6.0, 5.0);
        let lb = min_trans_dist(p, &m, r);
        let ub = min_max_trans_dist(p, &m, r);
        for side in m.sides() {
            for i in 0..=50 {
                let s = side.at(i as f64 / 50.0);
                assert!(transitive_dist(p, s, r) >= lb - EPS);
            }
        }
        // Some boundary point achieves ≤ ub.
        let best_sample = m
            .sides()
            .iter()
            .flat_map(|side| (0..=50).map(move |i| side.at(i as f64 / 50.0)))
            .map(|s| transitive_dist(p, s, r))
            .fold(f64::INFINITY, f64::min);
        assert!(best_sample <= ub + EPS);
    }

    #[test]
    fn min_trans_dist_never_below_direct_distance() {
        let m = Rect::from_coords(10.0, 10.0, 12.0, 12.0);
        let p = Point::new(0.0, 0.0);
        let r = Point::new(1.0, 1.0);
        assert!(min_trans_dist(p, &m, r) >= p.dist(r) - EPS);
    }

    #[test]
    fn symmetric_in_p_and_r() {
        let m = Rect::from_coords(0.0, 0.0, 2.0, 2.0);
        let p = Point::new(-3.0, 5.0);
        let r = Point::new(4.0, -1.0);
        assert!((min_trans_dist(p, &m, r) - min_trans_dist(r, &m, p)).abs() < EPS);
        assert!((min_max_trans_dist(p, &m, r) - min_max_trans_dist(r, &m, p)).abs() < EPS);
    }
}
