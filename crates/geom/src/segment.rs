//! Line segments: reflection, intersection and clipping helpers used by the
//! transitive distance metrics.

use crate::{Point, Rect};
use serde::{Deserialize, Serialize};

/// A (possibly degenerate) line segment between two points.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// First endpoint.
    pub a: Point,
    /// Second endpoint.
    pub b: Point,
}

impl Segment {
    /// Creates a segment from its endpoints.
    #[inline]
    pub const fn new(a: Point, b: Point) -> Self {
        Segment { a, b }
    }

    /// Segment length.
    #[inline]
    pub fn length(&self) -> f64 {
        self.a.dist(self.b)
    }

    /// `true` when both endpoints coincide.
    #[inline]
    pub fn is_degenerate(&self) -> bool {
        self.a == self.b
    }

    /// The point at parameter `t ∈ [0, 1]` along the segment.
    #[inline]
    pub fn at(&self, t: f64) -> Point {
        self.a.lerp(self.b, t)
    }

    /// Signed area cross product locating `p` relative to the directed
    /// supporting line `a → b`: positive on the left, negative on the right,
    /// zero on the line.
    #[inline]
    pub fn side_of(&self, p: Point) -> f64 {
        (self.b - self.a).cross(p - self.a)
    }

    /// Orthogonal projection of `p` onto the *supporting line*, expressed as
    /// the parameter `t` with `projection = a + t·(b − a)`.
    ///
    /// Returns `0` for degenerate segments.
    #[inline]
    pub fn project_param(&self, p: Point) -> f64 {
        let ab = self.b - self.a;
        let len2 = ab.dot(ab);
        if len2 == 0.0 {
            0.0
        } else {
            (p - self.a).dot(ab) / len2
        }
    }

    /// The point of the segment closest to `p`.
    #[inline]
    pub fn closest_point(&self, p: Point) -> Point {
        self.at(self.project_param(p).clamp(0.0, 1.0))
    }

    /// Distance from `p` to the segment.
    #[inline]
    pub fn dist_to_point(&self, p: Point) -> f64 {
        p.dist(self.closest_point(p))
    }

    /// Mirror image of `p` across the supporting line of the segment.
    ///
    /// For a degenerate segment the "line" is undefined; the point itself is
    /// returned, which keeps the transitive-distance computations exact
    /// (the degenerate side contributes via its endpoints).
    #[inline]
    pub fn reflect(&self, p: Point) -> Point {
        if self.is_degenerate() {
            return p;
        }
        let proj = self.at(self.project_param(p));
        proj * 2.0 - p
    }

    /// `true` when this segment and `other` share at least one point
    /// (touching endpoints and collinear overlap both count).
    pub fn intersects(&self, other: &Segment) -> bool {
        let d1 = self.side_of(other.a);
        let d2 = self.side_of(other.b);
        let d3 = other.side_of(self.a);
        let d4 = other.side_of(self.b);
        if ((d1 > 0.0 && d2 < 0.0) || (d1 < 0.0 && d2 > 0.0))
            && ((d3 > 0.0 && d4 < 0.0) || (d3 < 0.0 && d4 > 0.0))
        {
            return true;
        }
        // Collinear / touching cases.
        (d1 == 0.0 && on_segment(self, other.a))
            || (d2 == 0.0 && on_segment(self, other.b))
            || (d3 == 0.0 && on_segment(other, self.a))
            || (d4 == 0.0 && on_segment(other, self.b))
    }

    /// `true` when the segment intersects the *filled* rectangle (boundary
    /// included). Implemented with a Liang–Barsky parametric clip.
    pub fn intersects_rect(&self, rect: &Rect) -> bool {
        // Quick accepts.
        if rect.contains(self.a) || rect.contains(self.b) {
            return true;
        }
        let d = self.b - self.a;
        let mut t0 = 0.0f64;
        let mut t1 = 1.0f64;
        // Clip against each of the four half-planes.
        let checks = [
            (-d.x, self.a.x - rect.min.x), // x >= min.x
            (d.x, rect.max.x - self.a.x),  // x <= max.x
            (-d.y, self.a.y - rect.min.y), // y >= min.y
            (d.y, rect.max.y - self.a.y),  // y <= max.y
        ];
        for (p, q) in checks {
            if p == 0.0 {
                if q < 0.0 {
                    return false; // parallel and outside
                }
            } else {
                let r = q / p;
                if p < 0.0 {
                    if r > t1 {
                        return false;
                    }
                    if r > t0 {
                        t0 = r;
                    }
                } else {
                    if r < t0 {
                        return false;
                    }
                    if r < t1 {
                        t1 = r;
                    }
                }
            }
        }
        t0 <= t1
    }
}

/// `true` when collinear point `p` lies within the bounding box of `seg`.
#[inline]
fn on_segment(seg: &Segment, p: Point) -> bool {
    p.x >= seg.a.x.min(seg.b.x)
        && p.x <= seg.a.x.max(seg.b.x)
        && p.y >= seg.a.y.min(seg.b.y)
        && p.y <= seg.a.y.max(seg.b.y)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closest_point_clamps_to_endpoints() {
        let s = Segment::new(Point::new(0.0, 0.0), Point::new(10.0, 0.0));
        assert_eq!(s.closest_point(Point::new(-5.0, 3.0)), Point::new(0.0, 0.0));
        assert_eq!(
            s.closest_point(Point::new(15.0, -2.0)),
            Point::new(10.0, 0.0)
        );
        assert_eq!(s.closest_point(Point::new(4.0, 7.0)), Point::new(4.0, 0.0));
    }

    #[test]
    fn reflect_across_horizontal_line() {
        let s = Segment::new(Point::new(0.0, 1.0), Point::new(5.0, 1.0));
        let p = Point::new(2.0, 3.0);
        assert_eq!(s.reflect(p), Point::new(2.0, -1.0));
    }

    #[test]
    fn reflect_across_diagonal() {
        let s = Segment::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0));
        let r = s.reflect(Point::new(1.0, 0.0));
        assert!((r.x - 0.0).abs() < 1e-12 && (r.y - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reflect_degenerate_returns_point() {
        let s = Segment::new(Point::new(2.0, 2.0), Point::new(2.0, 2.0));
        assert_eq!(s.reflect(Point::new(9.0, 9.0)), Point::new(9.0, 9.0));
    }

    #[test]
    fn reflect_is_involution() {
        let s = Segment::new(Point::new(-1.0, 4.0), Point::new(3.0, -2.0));
        let p = Point::new(7.0, 8.0);
        let rr = s.reflect(s.reflect(p));
        assert!(rr.dist(p) < 1e-9);
    }

    #[test]
    fn segment_intersection_crossing() {
        let a = Segment::new(Point::new(0.0, 0.0), Point::new(2.0, 2.0));
        let b = Segment::new(Point::new(0.0, 2.0), Point::new(2.0, 0.0));
        assert!(a.intersects(&b));
    }

    #[test]
    fn segment_intersection_touching_endpoint() {
        let a = Segment::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0));
        let b = Segment::new(Point::new(1.0, 1.0), Point::new(2.0, 0.0));
        assert!(a.intersects(&b));
    }

    #[test]
    fn segment_intersection_disjoint() {
        let a = Segment::new(Point::new(0.0, 0.0), Point::new(1.0, 0.0));
        let b = Segment::new(Point::new(0.0, 1.0), Point::new(1.0, 1.0));
        assert!(!a.intersects(&b));
    }

    #[test]
    fn segment_intersection_collinear_overlap() {
        let a = Segment::new(Point::new(0.0, 0.0), Point::new(4.0, 0.0));
        let b = Segment::new(Point::new(2.0, 0.0), Point::new(6.0, 0.0));
        assert!(a.intersects(&b));
        let c = Segment::new(Point::new(5.0, 0.0), Point::new(6.0, 0.0));
        assert!(!a.intersects(&c));
    }

    #[test]
    fn intersects_rect_cases() {
        let r = Rect::from_coords(0.0, 0.0, 2.0, 2.0);
        // Fully inside.
        assert!(Segment::new(Point::new(0.5, 0.5), Point::new(1.5, 1.5)).intersects_rect(&r));
        // Crossing straight through.
        assert!(Segment::new(Point::new(-1.0, 1.0), Point::new(3.0, 1.0)).intersects_rect(&r));
        // Clipping a corner.
        assert!(Segment::new(Point::new(-0.5, 1.5), Point::new(1.5, 2.6)).intersects_rect(&r));
        // Entirely outside.
        assert!(!Segment::new(Point::new(-1.0, -1.0), Point::new(-0.1, 3.0)).intersects_rect(&r));
        // Touching the boundary only.
        assert!(Segment::new(Point::new(-1.0, 0.0), Point::new(1.0, 0.0)).intersects_rect(&r));
        // Parallel to an edge but outside it.
        assert!(!Segment::new(Point::new(-1.0, -0.1), Point::new(3.0, -0.1)).intersects_rect(&r));
    }

    #[test]
    fn intersects_rect_degenerate_segment() {
        let r = Rect::from_coords(0.0, 0.0, 1.0, 1.0);
        assert!(Segment::new(Point::new(0.5, 0.5), Point::new(0.5, 0.5)).intersects_rect(&r));
        assert!(!Segment::new(Point::new(5.0, 5.0), Point::new(5.0, 5.0)).intersects_rect(&r));
    }

    #[test]
    fn side_of_signs() {
        let s = Segment::new(Point::new(0.0, 0.0), Point::new(1.0, 0.0));
        assert!(s.side_of(Point::new(0.5, 1.0)) > 0.0);
        assert!(s.side_of(Point::new(0.5, -1.0)) < 0.0);
        assert_eq!(s.side_of(Point::new(0.5, 0.0)), 0.0);
    }
}
