//! Circles: the search ranges of the estimate–filter TNN paradigm
//! (`circle(p, d)` in the paper's Theorem 1).

use crate::{Point, Rect};
use serde::{Deserialize, Serialize};

/// A circle, used both as the TNN search range `circle(p, d)` and in the
/// approximate-NN circle–rectangle pruning heuristic (paper Heuristic 1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Circle {
    /// Center (the query point in TNN search ranges).
    pub center: Point,
    /// Radius; non-negative.
    pub radius: f64,
}

impl Circle {
    /// Creates a circle. Negative radii are clamped to zero.
    #[inline]
    pub fn new(center: Point, radius: f64) -> Self {
        Circle {
            center,
            radius: radius.max(0.0),
        }
    }

    /// Area `π r²`.
    #[inline]
    pub fn area(&self) -> f64 {
        std::f64::consts::PI * self.radius * self.radius
    }

    /// `true` when `p` lies inside or on the circle.
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        self.center.dist_sq(p) <= self.radius * self.radius
    }

    /// `true` when the circle and the filled rectangle share at least one
    /// point; the intersection test driving circular window queries on an
    /// R-tree.
    #[inline]
    pub fn intersects_rect(&self, rect: &Rect) -> bool {
        rect.min_dist_sq(self.center) <= self.radius * self.radius
    }

    /// `true` when the filled rectangle lies entirely inside the circle
    /// (all four corners within the radius).
    #[inline]
    pub fn contains_rect(&self, rect: &Rect) -> bool {
        rect.corners().iter().all(|&c| self.contains(c))
    }

    /// The axis-aligned bounding box of the circle.
    #[inline]
    pub fn bounding_rect(&self) -> Rect {
        let r = Point::new(self.radius, self.radius);
        Rect {
            min: self.center - r,
            max: self.center + r,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn negative_radius_clamps_to_zero() {
        let c = Circle::new(Point::ORIGIN, -3.0);
        assert_eq!(c.radius, 0.0);
        assert!(c.contains(Point::ORIGIN));
        assert!(!c.contains(Point::new(0.1, 0.0)));
    }

    #[test]
    fn contains_boundary() {
        let c = Circle::new(Point::ORIGIN, 5.0);
        assert!(c.contains(Point::new(3.0, 4.0)));
        assert!(!c.contains(Point::new(3.0, 4.1)));
    }

    #[test]
    fn intersects_rect_cases() {
        let c = Circle::new(Point::ORIGIN, 1.0);
        assert!(c.intersects_rect(&Rect::from_coords(0.5, 0.5, 2.0, 2.0)));
        assert!(c.intersects_rect(&Rect::from_coords(1.0, -0.5, 2.0, 0.5))); // touches at (1,0)
        assert!(!c.intersects_rect(&Rect::from_coords(1.0, 1.0, 2.0, 2.0))); // corner gap
        assert!(c.intersects_rect(&Rect::from_coords(-2.0, -2.0, 2.0, 2.0))); // circle inside rect
    }

    #[test]
    fn contains_rect_cases() {
        let c = Circle::new(Point::ORIGIN, 2.0);
        assert!(c.contains_rect(&Rect::from_coords(-1.0, -1.0, 1.0, 1.0)));
        assert!(!c.contains_rect(&Rect::from_coords(-2.0, -2.0, 2.0, 2.0)));
    }

    #[test]
    fn bounding_rect_is_tight() {
        let c = Circle::new(Point::new(3.0, -1.0), 2.0);
        assert_eq!(c.bounding_rect(), Rect::from_coords(1.0, -3.0, 5.0, 1.0));
    }

    #[test]
    fn area_of_unit_circle() {
        let c = Circle::new(Point::ORIGIN, 1.0);
        assert!((c.area() - std::f64::consts::PI).abs() < 1e-12);
    }
}
