//! Ellipses defined by two foci and a total (major-axis) distance — the
//! level sets of the transitive distance `dis(p, s) + dis(s, r)` and the
//! shape behind the paper's ellipse–rectangle pruning heuristic
//! (Heuristic 2).

use crate::{Point, Rect};
use serde::{Deserialize, Serialize};

/// An ellipse given by its two foci and the length of the major axis
/// (equivalently, the constant sum of distances to the foci).
///
/// In TNN query processing the foci are the query point `p` and the fixed
/// endpoint `r`, and `major` is the current transitive-distance upper
/// bound: a point `s` improves the bound iff it lies inside this ellipse.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Ellipse {
    /// First focus (the query point `p`).
    pub f1: Point,
    /// Second focus (the fixed endpoint `r`).
    pub f2: Point,
    /// Major-axis length `2a` — the transitive-distance bound.
    pub major: f64,
}

impl Ellipse {
    /// Creates the ellipse `{ s : dis(f1, s) + dis(s, f2) ≤ major }`.
    #[inline]
    pub fn new(f1: Point, f2: Point, major: f64) -> Self {
        Ellipse { f1, f2, major }
    }

    /// Half the focal distance `c`.
    #[inline]
    pub fn focal_half_dist(&self) -> f64 {
        self.f1.dist(self.f2) * 0.5
    }

    /// Semi-major axis `a = major / 2`.
    #[inline]
    pub fn semi_major(&self) -> f64 {
        self.major * 0.5
    }

    /// Semi-minor axis `b = sqrt(a² − c²)`, or `None` when the ellipse is
    /// empty (`major` smaller than the focal distance — no point can have a
    /// distance sum that small).
    #[inline]
    pub fn semi_minor(&self) -> Option<f64> {
        let a = self.semi_major();
        let c = self.focal_half_dist();
        if a < c || self.major < 0.0 {
            None
        } else {
            Some((a * a - c * c).sqrt())
        }
    }

    /// `true` when the ellipse contains no point at all.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.semi_minor().is_none()
    }

    /// `true` when the ellipse has zero area: empty, or degenerate (the
    /// segment between the foci, when `major` equals the focal distance).
    #[inline]
    pub fn is_degenerate(&self) -> bool {
        match self.semi_minor() {
            None => true,
            Some(b) => b == 0.0 || self.semi_major() == 0.0,
        }
    }

    /// Center (midpoint of the foci).
    #[inline]
    pub fn center(&self) -> Point {
        self.f1.midpoint(self.f2)
    }

    /// Area `π a b`, zero for empty/degenerate ellipses.
    #[inline]
    pub fn area(&self) -> f64 {
        match self.semi_minor() {
            None => 0.0,
            Some(b) => std::f64::consts::PI * self.semi_major() * b,
        }
    }

    /// `true` when `s` lies inside or on the ellipse, i.e. the path
    /// `f1 → s → f2` is no longer than `major`.
    #[inline]
    pub fn contains(&self, s: Point) -> bool {
        self.f1.dist(s) + s.dist(self.f2) <= self.major
    }

    /// The axis-aligned bounding box of the ellipse (tight), or `None` when
    /// empty.
    pub fn bounding_rect(&self) -> Option<Rect> {
        let b = self.semi_minor()?;
        let a = self.semi_major();
        let center = self.center();
        let d = self.f2 - self.f1;
        let len = d.norm();
        let (cos_t, sin_t) = if len == 0.0 {
            (1.0, 0.0)
        } else {
            (d.x / len, d.y / len)
        };
        // Extents of a rotated ellipse along the coordinate axes.
        let ex = ((a * cos_t).powi(2) + (b * sin_t).powi(2)).sqrt();
        let ey = ((a * sin_t).powi(2) + (b * cos_t).powi(2)).sqrt();
        Some(Rect {
            min: Point::new(center.x - ex, center.y - ey),
            max: Point::new(center.x + ex, center.y + ey),
        })
    }

    /// The affine transform mapping this ellipse onto the unit circle at the
    /// origin, as `(rotation cos, rotation sin, inv_a, inv_b, center)`.
    ///
    /// Returns `None` for empty or degenerate (zero-area) ellipses.
    /// Used by the exact ellipse–rectangle overlap computation: the map
    /// scales all areas by `1 / (a·b)`.
    pub(crate) fn to_unit_circle(self) -> Option<UnitCircleMap> {
        let b = self.semi_minor()?;
        let a = self.semi_major();
        if a == 0.0 || b == 0.0 {
            return None;
        }
        let center = self.center();
        let d = self.f2 - self.f1;
        let len = d.norm();
        let (cos_t, sin_t) = if len == 0.0 {
            (1.0, 0.0)
        } else {
            (d.x / len, d.y / len)
        };
        Some(UnitCircleMap {
            center,
            cos_t,
            sin_t,
            inv_a: 1.0 / a,
            inv_b: 1.0 / b,
            ab: a * b,
        })
    }
}

/// Affine map sending an ellipse to the unit circle (translate to origin,
/// rotate the focal axis onto x, scale the axes).
#[derive(Debug, Clone, Copy)]
pub(crate) struct UnitCircleMap {
    center: Point,
    cos_t: f64,
    sin_t: f64,
    inv_a: f64,
    inv_b: f64,
    /// Product of the semi-axes: areas in circle space scale by `ab` back to
    /// ellipse space.
    pub ab: f64,
}

impl UnitCircleMap {
    /// Applies the map to a point.
    #[inline]
    pub fn apply(&self, p: Point) -> Point {
        let v = p - self.center;
        // Rotate by −θ, then scale.
        let rx = v.x * self.cos_t + v.y * self.sin_t;
        let ry = -v.x * self.sin_t + v.y * self.cos_t;
        Point::new(rx * self.inv_a, ry * self.inv_b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn circle_as_degenerate_foci() {
        // Both foci at the same point: a circle of radius major/2.
        let e = Ellipse::new(Point::ORIGIN, Point::ORIGIN, 4.0);
        assert_eq!(e.semi_major(), 2.0);
        assert_eq!(e.semi_minor(), Some(2.0));
        assert!(e.contains(Point::new(2.0, 0.0)));
        assert!(!e.contains(Point::new(2.1, 0.0)));
        assert!((e.area() - 4.0 * std::f64::consts::PI).abs() < 1e-12);
    }

    #[test]
    fn empty_when_major_below_focal_distance() {
        let e = Ellipse::new(Point::new(0.0, 0.0), Point::new(10.0, 0.0), 9.0);
        assert!(e.is_empty());
        assert_eq!(e.area(), 0.0);
        assert!(e.bounding_rect().is_none());
    }

    #[test]
    fn degenerate_segment_ellipse() {
        let e = Ellipse::new(Point::new(0.0, 0.0), Point::new(10.0, 0.0), 10.0);
        assert!(!e.is_empty());
        assert!(e.is_degenerate());
        assert_eq!(e.area(), 0.0);
        assert!(e.contains(Point::new(5.0, 0.0)));
        assert!(!e.contains(Point::new(5.0, 0.1)));
    }

    #[test]
    fn axis_aligned_ellipse_geometry() {
        // Foci (±3, 0), major 10 → a = 5, b = 4.
        let e = Ellipse::new(Point::new(-3.0, 0.0), Point::new(3.0, 0.0), 10.0);
        assert_eq!(e.semi_major(), 5.0);
        assert_eq!(e.semi_minor(), Some(4.0));
        assert!(e.contains(Point::new(5.0, 0.0)));
        assert!(e.contains(Point::new(0.0, 4.0)));
        assert!(!e.contains(Point::new(0.0, 4.01)));
        let bb = e.bounding_rect().unwrap();
        assert!((bb.min.x + 5.0).abs() < 1e-12);
        assert!((bb.max.y - 4.0).abs() < 1e-12);
    }

    #[test]
    fn rotated_ellipse_bounding_rect() {
        // Focal axis along the diagonal.
        let e = Ellipse::new(Point::new(-3.0, -3.0), Point::new(3.0, 3.0), 12.0);
        let bb = e.bounding_rect().unwrap();
        // a = 6, c = 3√2, b = sqrt(36 − 18) = 3√2 ≈ 4.2426.
        // Extents: sqrt(a²cos² + b²sin²) with cos = sin = √2/2.
        let expect = ((36.0 + 18.0) / 2.0f64).sqrt();
        assert!((bb.max.x - expect).abs() < 1e-9);
        assert!((bb.max.y - expect).abs() < 1e-9);
    }

    #[test]
    fn unit_circle_map_sends_boundary_to_unit_norm() {
        let e = Ellipse::new(Point::new(1.0, 2.0), Point::new(7.0, 2.0), 10.0);
        let map = e.to_unit_circle().unwrap();
        // Boundary point: right vertex of the ellipse: center (4,2), a = 5.
        let v = map.apply(Point::new(9.0, 2.0));
        assert!((v.norm() - 1.0).abs() < 1e-9);
        // Top co-vertex: b = 4 → (4, 6).
        let w = map.apply(Point::new(4.0, 6.0));
        assert!((w.norm() - 1.0).abs() < 1e-9);
        // Center maps to origin.
        assert!(map.apply(Point::new(4.0, 2.0)).norm() < 1e-12);
    }

    #[test]
    fn contains_matches_focal_sum() {
        let e = Ellipse::new(Point::new(0.0, 0.0), Point::new(4.0, 0.0), 8.0);
        for (x, y) in [(2.0, 2.0), (-1.0, 0.5), (6.0, 0.0), (2.0, -2.6)] {
            let p = Point::new(x, y);
            let sum = e.f1.dist(p) + p.dist(e.f2);
            assert_eq!(e.contains(p), sum <= 8.0);
        }
    }
}
