//! The per-query span/event model: [`QueryTrace`], [`SpanKind`], and
//! the [`TraceConfig`] switch that keeps all of it zero-cost when off.
//!
//! A trace is *assembled by the layer that owns the clock*: this crate
//! never reads a time source itself — every duration is handed in by
//! callers that are already on the workspace's approved timing paths
//! (the serve worker loop, ticket resolution, the sim/bench binaries).
//! That keeps `tnn-check` rule R1 (no wall clocks outside the allow
//! list) at zero findings with tracing compiled in everywhere.

use std::time::Duration;

/// The phase a [`Span`] measures, across every serving layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// Admission-control work in `submit` before the job is enqueued
    /// (deadline check, cache probe, singleflight join, backpressure).
    AdmissionWait,
    /// The admission-time result-cache probe alone.
    CacheProbe,
    /// Time spent queued between enqueue and a worker picking the job.
    QueueResidency,
    /// The engine run itself (all attempts' compute, excluding backoff).
    EngineRun,
    /// Backoff sleeps between retry attempts on faulted channels.
    RetryBackoff,
    /// Time spent computing a degraded fallback answer.
    Degradation,
    /// Shard fan-out: submitting the query to every relevant shard.
    ShardScatter,
    /// Shard fan-in: waiting for the slowest sub-query ticket.
    ShardGather,
    /// Merging per-shard candidate answers into the final route.
    ShardMerge,
}

impl SpanKind {
    /// Stable lowercase name, used by exporters and dump tools.
    pub fn name(&self) -> &'static str {
        match self {
            SpanKind::AdmissionWait => "admission_wait",
            SpanKind::CacheProbe => "cache_probe",
            SpanKind::QueueResidency => "queue_residency",
            SpanKind::EngineRun => "engine_run",
            SpanKind::RetryBackoff => "retry_backoff",
            SpanKind::Degradation => "degradation",
            SpanKind::ShardScatter => "shard_scatter",
            SpanKind::ShardGather => "shard_gather",
            SpanKind::ShardMerge => "shard_merge",
        }
    }
}

/// One stamped phase of a query's life: what happened and for how long.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Which phase this span measures.
    pub kind: SpanKind,
    /// Wall time spent in the phase, stamped by the owning layer.
    pub duration: Duration,
}

/// The full observable record of one query: stamped phase spans plus
/// the engine's paper-native cost counters.
///
/// The counters mirror the paper's evaluation metrics — tune-in time
/// (pages downloaded ≙ node visits), the delayed-pruning parked-entry
/// count, and the `(H−1)(M−1)` client-memory peak — so a slow query can
/// be explained in the paper's own vocabulary, not just wall time.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QueryTrace {
    /// The server-assigned admission sequence number (unique per
    /// server), linking the trace back to its ticket.
    pub seq: u64,
    /// Stamped phases in the order they were recorded.
    pub spans: Vec<Span>,
    /// Engine attempts consumed (1 for a clean run, more under retry).
    pub attempts: u32,
    /// `true` when the answer came from a degraded fallback.
    pub degraded: bool,
    /// `true` when the query resolved to an error.
    pub errored: bool,
    /// Pages downloaded ≙ R-tree nodes visited (estimate + filter).
    pub node_visits: u64,
    /// Delayed-pruning hits: entries parked instead of expanded (§4.2.4).
    pub prune_hits: u64,
    /// Peak client queue length over all hops — the paper's
    /// `(H−1)(M−1)`-bounded memory metric.
    pub peak_queue: u64,
    /// Tune-in slots: total pages downloaded across channels.
    pub tune_in: u64,
    /// End-to-end latency as measured by the ticket resolver.
    pub total: Duration,
}

impl QueryTrace {
    /// A fresh trace for admission sequence number `seq`.
    pub fn new(seq: u64) -> Self {
        QueryTrace {
            seq,
            ..QueryTrace::default()
        }
    }

    /// Appends a stamped span.
    pub fn span(&mut self, kind: SpanKind, duration: Duration) {
        self.spans.push(Span { kind, duration });
    }

    /// Total duration across all spans of `kind` (a query may retry, so
    /// kinds can repeat).
    pub fn duration_of(&self, kind: SpanKind) -> Duration {
        self.spans
            .iter()
            .filter(|s| s.kind == kind)
            .map(|s| s.duration)
            .sum()
    }

    /// Sum of every span — should reconcile with [`Self::total`] up to
    /// the measurement seams between layers.
    pub fn span_sum(&self) -> Duration {
        self.spans.iter().map(|s| s.duration).sum()
    }

    /// `true` when the flight recorder must keep this trace regardless
    /// of speed (degraded or errored queries are always retained).
    pub fn flagged(&self) -> bool {
        self.degraded || self.errored
    }
}

/// Whether (and how) a server traces queries. `Off` is the default and
/// is *byte-transparent*: outcomes and stats are identical with tracing
/// on or off (gated by `crates/bench/tests/trace_equivalence.rs`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum TraceConfig {
    /// No spans, no recorder: the serving hot path takes no stamps.
    #[default]
    Off,
    /// Trace every query and retain the interesting ones.
    On(RecorderConfig),
}

impl TraceConfig {
    /// Tracing with the default [`RecorderConfig`] retention.
    pub fn on() -> Self {
        TraceConfig::On(RecorderConfig::default())
    }

    /// `true` when queries are being traced.
    pub fn is_on(&self) -> bool {
        matches!(self, TraceConfig::On(_))
    }

    /// The recorder retention policy, when tracing is on.
    pub fn recorder(&self) -> Option<RecorderConfig> {
        match self {
            TraceConfig::Off => None,
            TraceConfig::On(cfg) => Some(*cfg),
        }
    }
}

/// Retention policy for the [`crate::FlightRecorder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecorderConfig {
    /// Keep the N slowest traces (by [`QueryTrace::total`]), total
    /// across all stripes.
    pub slowest: usize,
    /// Ring capacity for degraded-or-errored traces, total across all
    /// stripes; the oldest flagged trace is evicted when full.
    pub flagged: usize,
    /// Lock stripes; recording contends only within `seq % stripes`.
    pub stripes: usize,
}

impl Default for RecorderConfig {
    fn default() -> Self {
        RecorderConfig {
            slowest: 32,
            flagged: 128,
            stripes: 8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_sum_and_per_kind_durations_add_up() {
        let mut t = QueryTrace::new(7);
        t.span(SpanKind::AdmissionWait, Duration::from_micros(5));
        t.span(SpanKind::QueueResidency, Duration::from_micros(40));
        t.span(SpanKind::EngineRun, Duration::from_micros(100));
        t.span(SpanKind::RetryBackoff, Duration::from_micros(30));
        t.span(SpanKind::EngineRun, Duration::from_micros(90));
        assert_eq!(t.seq, 7);
        assert_eq!(t.span_sum(), Duration::from_micros(265));
        assert_eq!(
            t.duration_of(SpanKind::EngineRun),
            Duration::from_micros(190)
        );
        assert_eq!(t.duration_of(SpanKind::ShardMerge), Duration::ZERO);
        assert!(!t.flagged());
        t.degraded = true;
        assert!(t.flagged());
    }

    #[test]
    fn trace_config_defaults_off_and_exposes_recorder() {
        assert_eq!(TraceConfig::default(), TraceConfig::Off);
        assert!(!TraceConfig::Off.is_on());
        assert_eq!(TraceConfig::Off.recorder(), None);
        let on = TraceConfig::on();
        assert!(on.is_on());
        assert_eq!(on.recorder(), Some(RecorderConfig::default()));
        let custom = TraceConfig::On(RecorderConfig {
            slowest: 4,
            flagged: 2,
            stripes: 1,
        });
        assert_eq!(custom.recorder().unwrap().slowest, 4);
    }

    #[test]
    fn span_kind_names_are_stable_and_distinct() {
        let kinds = [
            SpanKind::AdmissionWait,
            SpanKind::CacheProbe,
            SpanKind::QueueResidency,
            SpanKind::EngineRun,
            SpanKind::RetryBackoff,
            SpanKind::Degradation,
            SpanKind::ShardScatter,
            SpanKind::ShardGather,
            SpanKind::ShardMerge,
        ];
        let names: std::collections::BTreeSet<_> = kinds.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), kinds.len());
        assert!(names.contains("engine_run"));
    }
}
