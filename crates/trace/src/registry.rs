//! A named-metric registry with Prometheus text exposition:
//! [`MetricsRegistry`].
//!
//! The registry is *publish-style*: layers snapshot their own stats
//! structs (`ServeStats`, `ShardStats`, `FaultStats`, `CacheStats`) and
//! publish the values under stable names — the serving hot paths are
//! never rewired through the registry, so publishing costs nothing
//! until someone asks for a dump. Counters published from those structs
//! are monotone because the structs themselves only grow.

use crate::LatencyHistogram;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Mutex;
use std::time::Duration;

/// A single published metric value.
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Counter(u64),
    Gauge(f64),
    // Boxed: the histogram's 32 buckets dwarf the scalar variants.
    Histogram(Box<LatencyHistogram>),
}

impl Value {
    fn kind(&self) -> &'static str {
        match self {
            Value::Counter(_) => "counter",
            Value::Gauge(_) => "gauge",
            Value::Histogram(_) => "histogram",
        }
    }
}

/// All series of one metric *family* (same base name, possibly several
/// label sets), with its help text.
#[derive(Debug, Clone)]
struct Family {
    help: String,
    series: BTreeMap<String, Value>,
}

/// A registry of named counters, gauges, and histograms, rendered in
/// the Prometheus text exposition format.
///
/// Metric names follow the workspace scheme `tnn_<layer>_<what>` and
/// may carry a literal label suffix, e.g.
/// `tnn_serve_completed{class="interactive"}` — series sharing a base
/// name form one family and are rendered under a single
/// `# HELP`/`# TYPE` header. Re-publishing a name overwrites its value
/// (last write wins), which keeps publishing idempotent.
///
/// ```
/// use tnn_trace::MetricsRegistry;
///
/// let reg = MetricsRegistry::new();
/// reg.counter("tnn_demo_total", "Demo counter.", 3);
/// let text = reg.render_prometheus();
/// assert!(text.contains("# TYPE tnn_demo_total counter"));
/// assert!(text.contains("tnn_demo_total 3"));
/// ```
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    registry: Mutex<BTreeMap<String, Family>>,
}

/// The base name of a possibly-labelled series name.
fn family_of(name: &str) -> &str {
    name.split('{').next().unwrap_or(name)
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    fn publish(&self, name: &str, help: &str, value: Value) {
        debug_assert!(
            !name.is_empty()
                && family_of(name)
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "invalid metric name {name:?}"
        );
        let mut registry = self.registry.lock().unwrap_or_else(|e| e.into_inner());
        let family = registry
            .entry(family_of(name).to_string())
            .or_insert_with(|| Family {
                help: help.to_string(),
                series: BTreeMap::new(),
            });
        family.series.insert(name.to_string(), value);
    }

    /// Publishes (or overwrites) a monotone counter.
    pub fn counter(&self, name: &str, help: &str, value: u64) {
        self.publish(name, help, Value::Counter(value));
    }

    /// Publishes (or overwrites) a point-in-time gauge.
    pub fn gauge(&self, name: &str, help: &str, value: f64) {
        self.publish(name, help, Value::Gauge(value));
    }

    /// Publishes (or overwrites) a latency histogram; rendered with
    /// cumulative `_bucket` series plus honest `_sum`/`_count`.
    pub fn histogram(&self, name: &str, help: &str, hist: &LatencyHistogram) {
        self.publish(name, help, Value::Histogram(Box::new(*hist)));
    }

    /// Number of published series across all families.
    pub fn len(&self) -> usize {
        let registry = self.registry.lock().unwrap_or_else(|e| e.into_inner());
        registry.values().map(|f| f.series.len()).sum()
    }

    /// `true` when nothing has been published.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Renders every family in the Prometheus text exposition format
    /// (`# HELP` / `# TYPE` headers, histogram `_bucket`/`_sum`/
    /// `_count` expansion, `le` bounds in seconds).
    pub fn render_prometheus(&self) -> String {
        let registry = self.registry.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = String::new();
        for (family_name, family) in registry.iter() {
            let kind = family
                .series
                .values()
                .next()
                .map(Value::kind)
                .unwrap_or("untyped");
            let _ = writeln!(out, "# HELP {family_name} {}", family.help);
            let _ = writeln!(out, "# TYPE {family_name} {kind}");
            for (name, value) in family.series.iter() {
                match value {
                    Value::Counter(v) => {
                        let _ = writeln!(out, "{name} {v}");
                    }
                    Value::Gauge(v) => {
                        let _ = writeln!(out, "{name} {v}");
                    }
                    Value::Histogram(h) => render_histogram(&mut out, name, h),
                }
            }
        }
        out
    }
}

/// Seconds with enough precision for microsecond-granular bounds.
fn secs(d: Duration) -> String {
    format!("{:.6}", d.as_secs_f64())
}

/// Splices a label into a possibly-already-labelled series name:
/// `name{a="b"}` + `le="x"` → `name{a="b",le="x"}`.
fn with_label(name: &str, suffix: &str, label: &str) -> String {
    match name.split_once('{') {
        Some((base, rest)) => format!("{base}{suffix}{{{label},{rest}"),
        None => format!("{name}{suffix}{{{label}}}"),
    }
}

fn render_histogram(out: &mut String, name: &str, h: &LatencyHistogram) {
    let mut cumulative = 0u64;
    for (i, &bucket) in h.buckets().iter().enumerate() {
        cumulative += bucket;
        if bucket == 0 {
            continue; // sparse: only emit buckets that moved the count
        }
        // Bucket i spans [2^i, 2^(i+1)) µs; its inclusive upper bound.
        let le = secs(Duration::from_micros((1u64 << (i + 1)) - 1));
        let series = with_label(name, "_bucket", &format!("le=\"{le}\""));
        let _ = writeln!(out, "{series} {cumulative}");
    }
    let inf = with_label(name, "_bucket", "le=\"+Inf\"");
    let _ = writeln!(out, "{inf} {}", h.count());
    let (sum_base, count_base) = match name.split_once('{') {
        Some((base, rest)) => (
            format!("{base}_sum{{{rest}"),
            format!("{base}_count{{{rest}"),
        ),
        None => (format!("{name}_sum"), format!("{name}_count")),
    };
    let _ = writeln!(out, "{sum_base} {}", secs(h.sum()));
    let _ = writeln!(out, "{count_base} {}", h.count());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_render_with_headers() {
        let reg = MetricsRegistry::new();
        reg.counter("tnn_serve_completed", "Completed queries.", 10);
        reg.gauge("tnn_serve_queue_depth", "Live queue depth.", 2.0);
        let text = reg.render_prometheus();
        assert!(text.contains("# HELP tnn_serve_completed Completed queries."));
        assert!(text.contains("# TYPE tnn_serve_completed counter"));
        assert!(text.contains("tnn_serve_completed 10"));
        assert!(text.contains("# TYPE tnn_serve_queue_depth gauge"));
        assert!(text.contains("tnn_serve_queue_depth 2"));
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn labelled_series_share_one_family_header() {
        let reg = MetricsRegistry::new();
        reg.counter("tnn_c{class=\"a\"}", "Per-class.", 1);
        reg.counter("tnn_c{class=\"b\"}", "Per-class.", 2);
        let text = reg.render_prometheus();
        assert_eq!(text.matches("# TYPE tnn_c counter").count(), 1);
        assert!(text.contains("tnn_c{class=\"a\"} 1"));
        assert!(text.contains("tnn_c{class=\"b\"} 2"));
    }

    #[test]
    fn republishing_overwrites_idempotently() {
        let reg = MetricsRegistry::new();
        reg.counter("tnn_x", "X.", 1);
        reg.counter("tnn_x", "X.", 5);
        assert_eq!(reg.len(), 1);
        assert!(reg.render_prometheus().contains("tnn_x 5"));
    }

    #[test]
    fn histograms_expand_to_cumulative_buckets_sum_and_count() {
        let mut h = LatencyHistogram::default();
        h.record(Duration::from_micros(10)); // bucket 3: [8, 16) µs
        h.record(Duration::from_micros(10));
        h.record(Duration::from_micros(100)); // bucket 6: [64, 128) µs
        let reg = MetricsRegistry::new();
        reg.histogram("tnn_lat", "Latency.", &h);
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE tnn_lat histogram"));
        assert!(text.contains("tnn_lat_bucket{le=\"0.000015\"} 2"));
        assert!(text.contains("tnn_lat_bucket{le=\"0.000127\"} 3"));
        assert!(text.contains("tnn_lat_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("tnn_lat_sum 0.000120"));
        assert!(text.contains("tnn_lat_count 3"));
    }

    #[test]
    fn labelled_histograms_splice_le_before_existing_labels() {
        let mut h = LatencyHistogram::default();
        h.record(Duration::from_micros(10));
        let reg = MetricsRegistry::new();
        reg.histogram("tnn_lat{class=\"batch\"}", "Latency.", &h);
        let text = reg.render_prometheus();
        assert!(text.contains("tnn_lat_bucket{le=\"0.000015\",class=\"batch\"} 1"));
        assert!(text.contains("tnn_lat_bucket{le=\"+Inf\",class=\"batch\"} 1"));
        assert!(text.contains("tnn_lat_sum{class=\"batch\"} 0.000010"));
        assert!(text.contains("tnn_lat_count{class=\"batch\"} 1"));
    }

    #[test]
    fn render_is_deterministically_ordered() {
        let reg = MetricsRegistry::new();
        reg.counter("tnn_b", "B.", 2);
        reg.counter("tnn_a", "A.", 1);
        let text = reg.render_prometheus();
        let a = text.find("tnn_a 1").unwrap();
        let b = text.find("tnn_b 2").unwrap();
        assert!(a < b, "families render in name order");
        assert_eq!(text, reg.render_prometheus());
    }
}
