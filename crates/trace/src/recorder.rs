//! The slow-query flight recorder: a bounded, lock-striped retention
//! buffer for [`QueryTrace`]s.
//!
//! Retention policy (per [`RecorderConfig`]): every recorded trace
//! competes for one of the `slowest` seats (ranked by
//! [`QueryTrace::total`]); degraded-or-errored traces are *additionally*
//! kept in a `flagged` ring that evicts oldest-first. Both pools are
//! bounded, so the recorder's footprint is fixed no matter how many
//! queries flow through. Recording locks only the stripe selected by
//! `seq % stripes`, and the serving integration records *after* ticket
//! resolution with no other lock held, so the recorder sits at the very
//! bottom of the lock hierarchy (`docs/locks.toml`: `trace.recorder`).

use crate::{QueryTrace, RecorderConfig};
use std::collections::VecDeque;
use std::sync::Mutex;

/// One stripe's retention state.
#[derive(Debug, Default)]
struct StripeState {
    /// Current slowest-seat holders, unsorted (linear min scan — the
    /// per-stripe seat count is small).
    slowest: Vec<QueryTrace>,
    /// Flagged (degraded/errored) ring, oldest first.
    flagged: VecDeque<QueryTrace>,
    /// Every record() that hit this stripe, retained or not.
    recorded: u64,
}

/// A bounded, lock-striped flight recorder retaining the N slowest and
/// all (up to a ring bound) degraded-or-errored query traces.
#[derive(Debug)]
pub struct FlightRecorder {
    stripes: Vec<Mutex<StripeState>>,
    slowest_per_stripe: usize,
    flagged_per_stripe: usize,
}

impl FlightRecorder {
    /// A recorder sized per `cfg`; total capacity is split evenly over
    /// the stripes (rounded up, so effective capacity ≥ requested).
    pub fn new(cfg: RecorderConfig) -> Self {
        let stripes = cfg.stripes.max(1);
        FlightRecorder {
            stripes: (0..stripes)
                .map(|_| Mutex::new(StripeState::default()))
                .collect(),
            slowest_per_stripe: cfg.slowest.div_ceil(stripes),
            flagged_per_stripe: cfg.flagged.div_ceil(stripes),
        }
    }

    /// Offers one completed trace for retention. Bounded-time: at most
    /// one stripe lock plus a linear scan over that stripe's seats.
    pub fn record(&self, trace: QueryTrace) {
        let stripe = &self.stripes[(trace.seq % self.stripes.len() as u64) as usize];
        let mut stripe = stripe.lock().unwrap_or_else(|e| e.into_inner());
        stripe.recorded += 1;
        if trace.flagged() && self.flagged_per_stripe > 0 {
            if stripe.flagged.len() == self.flagged_per_stripe {
                stripe.flagged.pop_front();
            }
            stripe.flagged.push_back(trace.clone());
        }
        if self.slowest_per_stripe == 0 {
            return;
        }
        if stripe.slowest.len() < self.slowest_per_stripe {
            stripe.slowest.push(trace);
            return;
        }
        // Full: replace the fastest seat holder iff this trace is slower.
        if let Some(min_at) = (0..stripe.slowest.len())
            .min_by_key(|&i| (stripe.slowest[i].total, stripe.slowest[i].seq))
        {
            if trace.total > stripe.slowest[min_at].total {
                stripe.slowest[min_at] = trace;
            }
        }
    }

    /// The retained slowest traces across all stripes, slowest first.
    pub fn slowest(&self) -> Vec<QueryTrace> {
        let mut out = Vec::new();
        for stripe in &self.stripes {
            let stripe = stripe.lock().unwrap_or_else(|e| e.into_inner());
            out.extend(stripe.slowest.iter().cloned());
        }
        out.sort_by(|a, b| b.total.cmp(&a.total).then(a.seq.cmp(&b.seq)));
        out
    }

    /// The retained degraded-or-errored traces, oldest first per stripe,
    /// ordered by sequence number across stripes.
    pub fn flagged(&self) -> Vec<QueryTrace> {
        let mut out = Vec::new();
        for stripe in &self.stripes {
            let stripe = stripe.lock().unwrap_or_else(|e| e.into_inner());
            out.extend(stripe.flagged.iter().cloned());
        }
        out.sort_by_key(|t| t.seq);
        out
    }

    /// Count of retained traces (slowest seats + flagged ring; a
    /// flagged trace that also holds a seat counts twice).
    pub fn len(&self) -> usize {
        let mut total = 0;
        for stripe in &self.stripes {
            let stripe = stripe.lock().unwrap_or_else(|e| e.into_inner());
            total += stripe.slowest.len() + stripe.flagged.len();
        }
        total
    }

    /// `true` when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total traces ever offered via [`Self::record`].
    pub fn recorded(&self) -> u64 {
        let mut total = 0;
        for stripe in &self.stripes {
            total += stripe.lock().unwrap_or_else(|e| e.into_inner()).recorded;
        }
        total
    }

    /// Effective slowest-seat capacity (≥ the configured total).
    pub fn slowest_capacity(&self) -> usize {
        self.slowest_per_stripe * self.stripes.len()
    }

    /// Effective flagged-ring capacity (≥ the configured total).
    pub fn flagged_capacity(&self) -> usize {
        self.flagged_per_stripe * self.stripes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn trace(seq: u64, micros: u64) -> QueryTrace {
        QueryTrace {
            seq,
            total: Duration::from_micros(micros),
            ..QueryTrace::default()
        }
    }

    fn cfg(slowest: usize, flagged: usize, stripes: usize) -> RecorderConfig {
        RecorderConfig {
            slowest,
            flagged,
            stripes,
        }
    }

    #[test]
    fn keeps_the_slowest_n() {
        let rec = FlightRecorder::new(cfg(3, 0, 1));
        for seq in 0..100 {
            rec.record(trace(seq, seq * 10));
        }
        let slowest = rec.slowest();
        assert_eq!(slowest.len(), 3);
        let seqs: Vec<u64> = slowest.iter().map(|t| t.seq).collect();
        assert_eq!(seqs, vec![99, 98, 97], "slowest first");
        assert_eq!(rec.recorded(), 100);
    }

    #[test]
    fn flagged_ring_keeps_all_up_to_capacity_then_evicts_oldest() {
        let rec = FlightRecorder::new(cfg(0, 4, 1));
        for seq in 0..6 {
            let mut t = trace(seq, 1);
            t.errored = seq % 2 == 0;
            t.degraded = seq % 2 == 1;
            rec.record(t);
        }
        let flagged = rec.flagged();
        assert_eq!(flagged.len(), 4);
        let seqs: Vec<u64> = flagged.iter().map(|t| t.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4, 5], "oldest two evicted");
    }

    #[test]
    fn fast_unflagged_traces_are_dropped() {
        let rec = FlightRecorder::new(cfg(1, 8, 1));
        rec.record(trace(0, 1000));
        rec.record(trace(1, 1)); // faster than the seat holder: dropped
        assert_eq!(rec.len(), 1);
        assert_eq!(rec.slowest()[0].seq, 0);
        assert_eq!(rec.recorded(), 2);
    }

    #[test]
    fn a_slow_flagged_trace_lands_in_both_pools() {
        let rec = FlightRecorder::new(cfg(2, 2, 1));
        let mut t = trace(5, 9999);
        t.degraded = true;
        rec.record(t);
        assert_eq!(rec.slowest().len(), 1);
        assert_eq!(rec.flagged().len(), 1);
        assert_eq!(rec.len(), 2);
    }

    #[test]
    fn striping_preserves_bounds_and_retains_across_stripes() {
        let rec = FlightRecorder::new(cfg(8, 8, 4));
        assert!(rec.slowest_capacity() >= 8);
        assert!(rec.flagged_capacity() >= 8);
        for seq in 0..1000 {
            let mut t = trace(seq, 1000 - seq);
            t.errored = seq % 7 == 0;
            rec.record(t);
        }
        assert!(rec.slowest().len() <= rec.slowest_capacity());
        assert!(rec.flagged().len() <= rec.flagged_capacity());
        assert_eq!(rec.recorded(), 1000);
        // Every stripe retained something: 1000 records over 4 stripes.
        assert!(rec.slowest().len() == rec.slowest_capacity());
    }

    #[test]
    fn zero_stripes_clamps_to_one() {
        let rec = FlightRecorder::new(cfg(2, 2, 0));
        rec.record(trace(0, 5));
        assert_eq!(rec.slowest().len(), 1);
    }
}
