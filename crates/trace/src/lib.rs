//! # tnn-trace
//!
//! Cross-layer observability for the broadcast-TNN serving stack: the
//! answer to "why was *this* query slow?" in the paper's own cost
//! vocabulary.
//!
//! Three pieces, all std-only and dependency-free so every layer
//! (serve, qos, faults, shard, sim) can record into them without new
//! edges in the crate graph:
//!
//! * **Span/event model** — [`QueryTrace`] records stamped phases
//!   ([`SpanKind`]: admission wait, cache probe, queue residency,
//!   engine run, retry backoff, degradation, shard scatter/gather/
//!   merge) plus the engine's paper-native counters (node visits ≙
//!   tune-in pages, delayed-pruning hits, the `(H−1)(M−1)`-bounded
//!   peak queue length) threaded through `tnn_core::QueryOutcome`.
//! * **Metrics registry** — [`MetricsRegistry`] holds named counters,
//!   gauges, and [`LatencyHistogram`]s and renders the Prometheus text
//!   exposition format via [`MetricsRegistry::render_prometheus`];
//!   layers publish snapshots of their existing stats structs, so hot
//!   paths are never rewired through the registry.
//! * **Flight recorder** — [`FlightRecorder`] retains the N slowest
//!   and all degraded-or-errored traces in bounded, lock-striped
//!   pools, queryable from `tnn_serve::Server` / `tnn_shard::ShardRouter`
//!   and dumped by `serve_load --trace`.
//!
//! ## Determinism and zero cost when off
//!
//! This crate never reads a clock: every [`std::time::Duration`] is
//! stamped by a caller on an approved timing path, so `tnn-check` R1
//! stays at zero findings. With `TraceConfig::Off` (the default) the
//! serving layers take no stamps and record nothing, and the
//! byte-transparency gate `crates/bench/tests/trace_equivalence.rs`
//! holds traced ≡ untraced for outcomes and stats counters. See
//! `docs/OBSERVABILITY.md`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod histogram;
mod recorder;
mod registry;
mod span;

pub use histogram::LatencyHistogram;
pub use recorder::FlightRecorder;
pub use registry::MetricsRegistry;
pub use span::{QueryTrace, RecorderConfig, Span, SpanKind, TraceConfig};
