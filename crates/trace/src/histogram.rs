//! Fixed-footprint latency accounting: [`LatencyHistogram`].

use std::time::Duration;

/// Number of log₂ buckets: bucket `i` counts latencies in
/// `[2^i, 2^(i+1))` microseconds, so 32 buckets span sub-microsecond to
/// ~71 minutes — more than any serving latency this stack produces.
const BUCKETS: usize = 32;

/// A log₂-bucketed latency histogram over microseconds — `Copy`,
/// allocation-free, and mergeable, so it lives inside per-class stats
/// snapshots and crosses threads by value.
///
/// Quantiles are read as the *upper bound* of the bucket holding the
/// requested rank (conservative: reported p99 ≥ true p99, never under),
/// which is the right direction for deadline budgeting. The exact
/// microsecond total is kept alongside the buckets ([`Self::sum`]), so
/// a Prometheus exporter can emit `_sum`/`_count` honestly rather than
/// reconstructing a lossy sum from bucket bounds.
///
/// ```
/// use std::time::Duration;
/// use tnn_trace::LatencyHistogram;
///
/// let mut h = LatencyHistogram::default();
/// for ms in [1u64, 1, 1, 1, 50] {
///     h.record(Duration::from_millis(ms));
/// }
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.sum(), Duration::from_millis(54));
/// assert!(h.quantile(0.50) < Duration::from_millis(3));
/// assert!(h.quantile(0.99) >= Duration::from_millis(50));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LatencyHistogram {
    buckets: [u64; BUCKETS],
    sum_micros: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: [0; BUCKETS],
            sum_micros: 0,
        }
    }
}

impl LatencyHistogram {
    /// The bucket index of `latency`: `floor(log2(µs))`, clamped.
    #[inline]
    fn index(latency: Duration) -> usize {
        let micros = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        if micros == 0 {
            0
        } else {
            (63 - micros.leading_zeros() as usize).min(BUCKETS - 1)
        }
    }

    /// Counts one observation.
    #[inline]
    pub fn record(&mut self, latency: Duration) {
        self.buckets[Self::index(latency)] += 1;
        let micros = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        self.sum_micros = self.sum_micros.saturating_add(micros);
    }

    /// Adds every observation of `other` into `self`.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (into, from) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *into += from;
        }
        self.sum_micros = self.sum_micros.saturating_add(other.sum_micros);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Exact total of all recorded latencies (microsecond granularity),
    /// for honest `_sum` exposition next to [`Self::count`].
    pub fn sum(&self) -> Duration {
        Duration::from_micros(self.sum_micros)
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.buckets.iter().all(|&b| b == 0)
    }

    /// The latency at quantile `q` (clamped to `0.0..=1.0`): the upper
    /// bound of the bucket holding the `ceil(q · count)`-th observation.
    /// [`Duration::ZERO`] while empty.
    pub fn quantile(&self, q: f64) -> Duration {
        let total = self.count();
        if total == 0 {
            return Duration::ZERO;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &bucket) in self.buckets.iter().enumerate() {
            seen += bucket;
            if seen >= rank {
                // Upper bound of bucket i: 2^(i+1) − 1 µs.
                return Duration::from_micros((1u64 << (i + 1)) - 1);
            }
        }
        Duration::from_micros(u64::MAX >> 10)
    }

    /// Median latency (bucket upper bound).
    pub fn p50(&self) -> Duration {
        self.quantile(0.50)
    }

    /// 99th-percentile latency (bucket upper bound).
    pub fn p99(&self) -> Duration {
        self.quantile(0.99)
    }

    /// 99.9th-percentile latency (bucket upper bound) — the tail the
    /// flight recorder is built to explain.
    pub fn p999(&self) -> Duration {
        self.quantile(0.999)
    }

    /// The raw bucket counts (bucket `i` spans `[2^i, 2^(i+1))` µs).
    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.buckets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reads_zero() {
        let h = LatencyHistogram::default();
        assert_eq!(h.count(), 0);
        assert!(h.is_empty());
        assert_eq!(h.sum(), Duration::ZERO);
        assert_eq!(h.p50(), Duration::ZERO);
        assert_eq!(h.p99(), Duration::ZERO);
        assert_eq!(h.p999(), Duration::ZERO);
    }

    #[test]
    fn bucketing_is_log2_of_micros() {
        assert_eq!(LatencyHistogram::index(Duration::ZERO), 0);
        assert_eq!(LatencyHistogram::index(Duration::from_micros(1)), 0);
        assert_eq!(LatencyHistogram::index(Duration::from_micros(2)), 1);
        assert_eq!(LatencyHistogram::index(Duration::from_micros(3)), 1);
        assert_eq!(LatencyHistogram::index(Duration::from_micros(4)), 2);
        assert_eq!(LatencyHistogram::index(Duration::from_millis(1)), 9);
        assert_eq!(LatencyHistogram::index(Duration::from_secs(3600)), 31);
        assert_eq!(
            LatencyHistogram::index(Duration::from_secs(1_000_000)),
            BUCKETS - 1
        );
    }

    #[test]
    fn quantiles_bracket_the_distribution() {
        let mut h = LatencyHistogram::default();
        for _ in 0..99 {
            h.record(Duration::from_micros(100));
        }
        h.record(Duration::from_millis(80));
        assert_eq!(h.count(), 100);
        // p50 sits in the 64..128 µs bucket; its upper bound is 127 µs.
        assert_eq!(h.p50(), Duration::from_micros(127));
        // p99 lands on the 99th observation — still the fast bucket —
        // while p99.9 and p100 must cover the slow outlier.
        assert_eq!(h.p99(), Duration::from_micros(127));
        assert!(h.p999() >= Duration::from_millis(80));
        assert!(h.quantile(1.0) >= Duration::from_millis(80));
    }

    #[test]
    fn p999_needs_a_thousand_fast_observations_to_shake_one_outlier() {
        let mut h = LatencyHistogram::default();
        h.record(Duration::from_millis(80));
        for _ in 0..999 {
            h.record(Duration::from_micros(100));
        }
        // 1000 observations: rank ceil(0.999 · 1000) = 999 — fast bucket.
        assert_eq!(h.p999(), Duration::from_micros(127));
        h.record(Duration::from_micros(100));
        h.record(Duration::from_millis(80));
        // 1002 observations, two outliers: rank 1001 lands on an outlier.
        assert!(h.p999() >= Duration::from_millis(80));
    }

    #[test]
    fn sum_tracks_exact_micros_and_merges() {
        let mut h = LatencyHistogram::default();
        h.record(Duration::from_micros(100));
        h.record(Duration::from_micros(23));
        assert_eq!(h.sum(), Duration::from_micros(123));
        let mut other = LatencyHistogram::default();
        other.record(Duration::from_micros(7));
        h.merge(&other);
        assert_eq!(h.sum(), Duration::from_micros(130));
        assert_eq!(h.count(), 3);
        // Saturates instead of wrapping on absurd totals.
        let mut top = LatencyHistogram::default();
        top.record(Duration::from_micros(u64::MAX));
        top.record(Duration::from_micros(u64::MAX));
        assert_eq!(top.sum(), Duration::from_micros(u64::MAX));
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = LatencyHistogram::default();
        let mut b = LatencyHistogram::default();
        a.record(Duration::from_micros(10));
        b.record(Duration::from_micros(10));
        b.record(Duration::from_millis(5));
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.buckets()[3], 2); // 8..16 µs
        let merged_empty = {
            let mut h = a;
            h.merge(&LatencyHistogram::default());
            h
        };
        assert_eq!(merged_empty, a);
    }
}
