//! Approximate-NN pruning (paper §5): the probabilistic pruning condition
//! and the dynamic threshold `α`.

use serde::{Deserialize, Serialize};

/// The pruning regime of one broadcast search.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub enum AnnMode {
    /// Exact NN search (eNN): only guaranteed pruning
    /// (`lower_bound > upper_bound`). Equivalent to `α = 0` (§5.1: "when
    /// α is 0, ANN becomes eNN"). The default mode.
    #[default]
    Exact,
    /// The paper's dynamic threshold (eq. 4):
    /// `α = node_depth / tree_height × factor`, so nodes near the root
    /// are pruned almost exactly while nodes near the leaves are pruned
    /// aggressively. The paper uses `factor = 1` for Double-NN and
    /// Window-Based, `factor = 1/150` or `1/200` for Hybrid-NN.
    Dynamic {
        /// The adjustment factor of eq. 4.
        factor: f64,
    },
    /// A static threshold independent of depth, as in Lin et al. \[14\] —
    /// kept for the ablation showing why the dynamic version is needed
    /// ("a fixed value for α may not be suitable for all R-tree nodes").
    Fixed {
        /// The static threshold.
        alpha: f64,
    },
}

impl AnnMode {
    /// The pruning threshold `α ∈ [0, 1]` for a node at `depth` (root =
    /// 0) in a tree of `height` levels.
    #[inline]
    pub fn alpha(&self, depth: u32, height: u32) -> f64 {
        match *self {
            AnnMode::Exact => 0.0,
            AnnMode::Dynamic { factor } => dynamic_alpha(depth, height, factor),
            AnnMode::Fixed { alpha } => alpha.clamp(0.0, 1.0),
        }
    }

    /// `true` when this mode can prune nodes that might contain the exact
    /// NN (any non-exact mode).
    #[inline]
    pub fn is_approximate(&self) -> bool {
        !matches!(self, AnnMode::Exact)
    }

    /// The ANN pruning decision (Heuristics 1 & 2): prune when the
    /// search-region overlap fraction of the node's MBR is at most `α`.
    #[inline]
    pub fn prunes(&self, overlap_ratio: f64, depth: u32, height: u32) -> bool {
        if let AnnMode::Exact = self {
            return false;
        }
        overlap_ratio <= self.alpha(depth, height)
    }
}

/// The paper's eq. 4: `α = Node_depth / Rtree_height × factor`, clamped
/// into `[0, 1]`.
#[inline]
pub fn dynamic_alpha(depth: u32, height: u32, factor: f64) -> f64 {
    if height == 0 {
        return 0.0;
    }
    (depth as f64 / height as f64 * factor).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_mode_never_prunes() {
        let m = AnnMode::Exact;
        assert_eq!(m.alpha(5, 10), 0.0);
        assert!(!m.is_approximate());
        assert!(!m.prunes(0.0, 9, 10));
    }

    #[test]
    fn dynamic_alpha_grows_with_depth() {
        let m = AnnMode::Dynamic { factor: 1.0 };
        assert_eq!(m.alpha(0, 10), 0.0);
        assert_eq!(m.alpha(5, 10), 0.5);
        assert_eq!(m.alpha(9, 10), 0.9);
        assert!(m.alpha(3, 10) < m.alpha(7, 10));
        assert!(m.is_approximate());
    }

    #[test]
    fn dynamic_alpha_scales_with_factor() {
        assert_eq!(dynamic_alpha(5, 10, 1.0 / 150.0), 0.5 / 150.0);
        // Clamping at 1.
        assert_eq!(dynamic_alpha(9, 10, 100.0), 1.0);
        // Degenerate height.
        assert_eq!(dynamic_alpha(0, 0, 1.0), 0.0);
    }

    #[test]
    fn pruning_condition_is_at_most_alpha() {
        let m = AnnMode::Dynamic { factor: 1.0 };
        // depth 5 of 10 → α = 0.5.
        assert!(m.prunes(0.5, 5, 10));
        assert!(m.prunes(0.3, 5, 10));
        assert!(!m.prunes(0.51, 5, 10));
        // Root is never pruned under the dynamic rule (α = 0 and a node
        // overlapping nothing is already gone via the exact bound).
        assert!(!m.prunes(0.001, 0, 10));
        assert!(m.prunes(0.0, 0, 10));
    }

    #[test]
    fn fixed_mode_ignores_depth() {
        let m = AnnMode::Fixed { alpha: 0.4 };
        assert_eq!(m.alpha(0, 10), 0.4);
        assert_eq!(m.alpha(9, 10), 0.4);
        assert!(m.prunes(0.4, 0, 10));
        assert!(!m.prunes(0.41, 9, 10));
        // Out-of-range thresholds are clamped.
        assert_eq!(AnnMode::Fixed { alpha: 7.0 }.alpha(1, 2), 1.0);
    }
}
