//! Query answers and cost accounting.

use serde::{Deserialize, Serialize};
use tnn_geom::Point;
use tnn_rtree::ObjectId;

/// The answer to a TNN query: the pair `(s, r)` and its transitive
/// distance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TnnPair {
    /// The intermediate stop: location and object id in `S`.
    pub s: (Point, ObjectId),
    /// The final stop: location and object id in `R`.
    pub r: (Point, ObjectId),
    /// `dis(p, s) + dis(s, r)`.
    pub dist: f64,
}

/// The phases of the estimate–filter paradigm, for cost breakdowns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Phase {
    /// Search-range estimation (the NN searches).
    Estimate,
    /// Candidate retrieval (the window queries).
    Filter,
    /// Final download of the two answer objects' data pages.
    Retrieve,
}

/// Per-channel cost accounting for one query.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChannelCost {
    /// Pages downloaded during the estimate phase.
    pub estimate_pages: u64,
    /// Pages downloaded during the filter phase.
    pub filter_pages: u64,
    /// Pages downloaded retrieving the answer object.
    pub retrieve_pages: u64,
    /// Completion slot of the last activity on this channel.
    pub finish_time: u64,
    /// Peak client-queue occupancy of this channel's estimate-phase NN
    /// search (live queue + delayed-pruning parked list) — the paper's
    /// `(H−1)(M−1)`-bounded memory metric, per hop.
    pub peak_queue: u64,
    /// Delayed-pruning hits during the estimate phase: entries parked
    /// (§4.2.4) instead of expanded, still parked when the search ended.
    pub prune_hits: u64,
}

impl ChannelCost {
    /// Total pages downloaded on this channel (its tune-in time).
    pub fn total_pages(&self) -> u64 {
        self.estimate_pages + self.filter_pages + self.retrieve_pages
    }
}

/// The outcome of one TNN query execution over `k ≥ 2` channels.
///
/// The paper's two-channel special case (`p → s → r`) is `k = 2`; the
/// generalized core runs the same estimate–filter–join pipeline over a
/// `k`-hop route `p → s₁ → … → s_k` with `sᵢ` drawn from channel `i`'s
/// dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TnnRun {
    /// The answer route, one stop per channel in channel (= visit) order;
    /// empty when the algorithm failed to produce one (only possible for
    /// Approximate-TNN on unlucky ranges).
    pub route: Vec<(Point, ObjectId)>,
    /// Total route length `dis(p, s₁) + Σ dis(sᵢ, sᵢ₊₁)`, or `None` when
    /// the query failed.
    pub total_dist: Option<f64>,
    /// The search radius `d` used by the filter phase.
    pub search_radius: f64,
    /// Slot at which the query was issued.
    pub issued_at: u64,
    /// Slot at which the estimate phase finished (equals `issued_at` for
    /// Approximate-TNN, which computes its radius locally).
    pub estimate_end: u64,
    /// Slot at which the whole query finished (max over channels).
    pub completed_at: u64,
    /// Number of candidates retrieved by the filter phase from each
    /// channel.
    pub candidates: Vec<usize>,
    /// Per-channel cost breakdown.
    pub channels: Vec<ChannelCost>,
}

impl TnnRun {
    /// **Access time** (paper metric): elapsed slots from query issue to
    /// completion — "the larger of the access times in both channels".
    pub fn access_time(&self) -> u64 {
        self.completed_at - self.issued_at
    }

    /// **Tune-in time** (paper metric): total pages downloaded — "the sum
    /// of two tune-in times in both channels".
    pub fn tune_in(&self) -> u64 {
        self.channels.iter().map(|c| c.total_pages()).sum()
    }

    /// Tune-in time of the estimate phase only (all channels).
    pub fn tune_in_estimate(&self) -> u64 {
        self.channels.iter().map(|c| c.estimate_pages).sum()
    }

    /// Tune-in time of the filter phase only (all channels).
    pub fn tune_in_filter(&self) -> u64 {
        self.channels.iter().map(|c| c.filter_pages).sum()
    }

    /// Peak client-queue occupancy over all channels — the paper's
    /// `(H−1)(M−1)`-bounded client-memory metric for the whole query.
    pub fn peak_queue(&self) -> u64 {
        self.channels
            .iter()
            .map(|c| c.peak_queue)
            .max()
            .unwrap_or(0)
    }

    /// Total delayed-pruning hits across channels (§4.2.4).
    pub fn prune_hits(&self) -> u64 {
        self.channels.iter().map(|c| c.prune_hits).sum()
    }

    /// `true` when the algorithm produced no answer at all.
    pub fn failed(&self) -> bool {
        self.route.is_empty()
    }

    /// The answer as a classic two-channel [`TnnPair`]; `None` for failed
    /// queries and for `k > 2` routes (read [`TnnRun::route`] instead).
    pub fn answer(&self) -> Option<TnnPair> {
        match self.route.as_slice() {
            [s, r] => Some(TnnPair {
                s: *s,
                r: *r,
                dist: self.total_dist?,
            }),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_run() -> TnnRun {
        TnnRun {
            route: Vec::new(),
            total_dist: None,
            search_radius: 10.0,
            issued_at: 100,
            estimate_end: 150,
            completed_at: 260,
            candidates: vec![3, 4],
            channels: vec![
                ChannelCost {
                    estimate_pages: 5,
                    filter_pages: 7,
                    retrieve_pages: 16,
                    finish_time: 260,
                    peak_queue: 9,
                    prune_hits: 4,
                },
                ChannelCost {
                    estimate_pages: 2,
                    filter_pages: 3,
                    retrieve_pages: 16,
                    finish_time: 250,
                    peak_queue: 11,
                    prune_hits: 1,
                },
            ],
        }
    }

    #[test]
    fn metric_arithmetic() {
        let run = sample_run();
        assert_eq!(run.access_time(), 160);
        assert_eq!(run.tune_in(), 5 + 7 + 16 + 2 + 3 + 16);
        assert_eq!(run.tune_in_estimate(), 7);
        assert_eq!(run.tune_in_filter(), 10);
        assert_eq!(run.peak_queue(), 11, "max over channels");
        assert_eq!(run.prune_hits(), 5, "sum over channels");
        assert!(run.failed());
        assert!(run.answer().is_none());
        assert_eq!(run.channels[0].total_pages(), 28);
    }

    #[test]
    fn answer_pair_only_for_two_stop_routes() {
        let mut run = sample_run();
        run.route = vec![
            (Point::new(1.0, 0.0), ObjectId(4)),
            (Point::new(2.0, 0.0), ObjectId(9)),
        ];
        run.total_dist = Some(2.0);
        let pair = run.answer().expect("two stops form a pair");
        assert_eq!(pair.s.1, ObjectId(4));
        assert_eq!(pair.r.1, ObjectId(9));
        assert_eq!(pair.dist, 2.0);
        run.route.push((Point::new(3.0, 0.0), ObjectId(1)));
        assert!(run.answer().is_none(), "3-hop routes do not fit a pair");
        assert!(!run.failed());
    }
}
