//! Broadcast query tasks: arrival-ordered traversals of on-air R-trees.
//!
//! Random access is impossible on a broadcast channel, so every task keeps
//! its candidate nodes in a queue ordered by **next arrival time** and
//! processes them strictly in that order — the backtrack-free discipline
//! the paper adopts in §2.2/§6 ("we maintain the priority queue of the
//! candidate R-tree nodes according to their arrival time, so that
//! backtracking is avoided"). Both task types realize that priority queue
//! as a binary min-heap keyed `(arrival, node id)`, giving O(1) peeks and
//! O(log n) pops; see [`queue`] for the backends and the pruning
//! discipline of the NN search.

mod nn;
pub mod queue;
mod window;

pub use nn::{BroadcastNnSearch, NnScratch, NnSearchTask};
pub use queue::{ArrivalHeap, CandidateQueue, QueueEntry};
pub use window::{WindowQueryTask, WindowScratch};

#[cfg(any(test, feature = "linear-reference"))]
pub use nn::LinearNnSearchTask;

#[cfg(any(test, feature = "linear-reference"))]
pub use queue::LinearQueue;
