//! Broadcast query tasks: arrival-ordered traversals of on-air R-trees.
//!
//! Random access is impossible on a broadcast channel, so every task keeps
//! its candidate nodes in a queue ordered by **next arrival time** and
//! processes them strictly in that order — the backtrack-free discipline
//! the paper adopts in §2.2/§6 ("we maintain the priority queue of the
//! candidate R-tree nodes according to their arrival time, so that
//! backtracking is avoided").

mod nn;
mod window;

pub use nn::NnSearchTask;
pub use window::WindowQueryTask;
