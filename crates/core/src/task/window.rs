//! The filter-phase window query: retrieve every object inside the search
//! range `circle(p, d)` from an on-air R-tree, in arrival order.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use tnn_broadcast::{ChannelView, Tuner};
use tnn_geom::{Circle, Point};
use tnn_rtree::{NodeId, ObjectId};

/// One queued candidate node (its MBR already intersects the range).
/// Ordered by arrival; node id breaks ties deterministically.
type QueueEntry = Reverse<(u64, u32)>;

/// Reusable buffers for one [`WindowQueryTask`]: thread one through
/// repeated queries (e.g. a batch) to avoid re-allocating the queue and
/// the hit list per query.
#[derive(Debug, Default)]
pub struct WindowScratch {
    queue: BinaryHeap<QueueEntry>,
    hits: Vec<(Point, ObjectId)>,
}

/// A broadcast range (window) query over a circular search range.
///
/// Children whose MBR misses the circle are skipped at their parent —
/// range predicates are static, so there is nothing to gain from delayed
/// pruning here.
#[derive(Debug)]
pub struct WindowQueryTask<'a> {
    channel: ChannelView<'a>,
    range: Circle,
    queue: BinaryHeap<QueueEntry>,
    hits: Vec<(Point, ObjectId)>,
    tuner: Tuner,
    now: u64,
}

impl<'a> WindowQueryTask<'a> {
    /// Starts a window query on `channel` at global time `start`.
    /// Accepts a plain `&Channel` or a [`ChannelView`] carrying a
    /// per-query phase override.
    pub fn new(channel: impl Into<ChannelView<'a>>, range: Circle, start: u64) -> Self {
        Self::with_scratch(channel, range, start, &mut WindowScratch::default())
    }

    /// Like [`WindowQueryTask::new`], but takes the queue and hit buffers
    /// from `scratch` (pass the task back via
    /// [`WindowQueryTask::recycle`] when done to reuse the capacity).
    pub fn with_scratch(
        channel: impl Into<ChannelView<'a>>,
        range: Circle,
        start: u64,
        scratch: &mut WindowScratch,
    ) -> Self {
        let channel = channel.into();
        let mut queue = std::mem::take(&mut scratch.queue);
        let mut hits = std::mem::take(&mut scratch.hits);
        queue.clear();
        hits.clear();
        let root_arrival = channel.next_root_arrival(start);
        // The root is only worth downloading if the range touches the
        // dataset at all.
        if range.intersects_rect(&channel.tree().bounding_rect()) {
            queue.push(Reverse((root_arrival, NodeId::ROOT.0)));
        }
        WindowQueryTask {
            channel,
            range,
            queue,
            hits,
            tuner: Tuner::new(),
            now: start,
        }
    }

    /// Returns the task's buffers to `scratch` for reuse by a later
    /// query.
    pub fn recycle(self, scratch: &mut WindowScratch) {
        scratch.queue = self.queue;
        scratch.hits = self.hits;
        scratch.queue.clear();
        scratch.hits.clear();
    }

    /// `true` when traversal has finished.
    #[inline]
    pub fn is_done(&self) -> bool {
        self.queue.is_empty()
    }

    /// Arrival of the next node to download.
    pub fn next_arrival(&self) -> Option<u64> {
        self.queue.peek().map(|Reverse((arrival, _))| *arrival)
    }

    /// Objects found inside the range so far.
    pub fn hits(&self) -> &[(Point, ObjectId)] {
        &self.hits
    }

    /// Consumes the task, returning the collected hits.
    pub fn into_hits(self) -> Vec<(Point, ObjectId)> {
        self.hits
    }

    /// Page accounting.
    pub fn tuner(&self) -> &Tuner {
        &self.tuner
    }

    /// Task-local clock (finish time once done).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Downloads and processes the next candidate node.
    pub fn step(&mut self) -> Option<u64> {
        let Reverse((arrival, node_id)) = self.queue.pop()?;
        self.now = arrival + 1;
        self.tuner.download(arrival);

        let node = self.channel.node(NodeId(node_id));
        if let Some(children) = node.children() {
            for c in children {
                if self.range.intersects_rect(&c.mbr) {
                    let child_arrival = self.channel.next_node_arrival(c.child, self.now);
                    self.queue.push(Reverse((child_arrival, c.child.0)));
                }
            }
        } else if let Some(points) = node.points() {
            for e in points {
                if self.range.contains(e.point) {
                    self.hits.push((e.point, e.object));
                }
            }
        }
        Some(arrival)
    }

    /// Runs to completion; returns the finish time.
    pub fn run_to_completion(&mut self) -> u64 {
        while self.step().is_some() {}
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tnn_broadcast::{BroadcastParams, Channel};
    use tnn_rtree::{PackingAlgorithm, RTree};

    fn channel(pts: &[Point], phase: u64) -> Channel {
        let params = BroadcastParams::new(64);
        let tree = RTree::build(pts, params.rtree_params(), PackingAlgorithm::Str).unwrap();
        Channel::new(Arc::new(tree), params, phase)
    }

    fn grid(n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| Point::new((i % 20) as f64 * 10.0, (i / 20) as f64 * 10.0))
            .collect()
    }

    #[test]
    fn window_query_matches_direct_filter() {
        let pts = grid(400);
        let ch = channel(&pts, 13);
        let range = Circle::new(Point::new(95.0, 95.0), 42.0);
        let mut task = WindowQueryTask::new(&ch, range, 7);
        task.run_to_completion();
        let expect: usize = pts.iter().filter(|p| range.contains(**p)).count();
        assert_eq!(task.hits().len(), expect);
        assert!(task.hits().iter().all(|&(p, _)| range.contains(p)));
    }

    #[test]
    fn empty_range_downloads_nothing() {
        let pts = grid(100);
        let ch = channel(&pts, 0);
        let range = Circle::new(Point::new(-5000.0, -5000.0), 10.0);
        let mut task = WindowQueryTask::new(&ch, range, 0);
        task.run_to_completion();
        assert_eq!(task.hits().len(), 0);
        // The root MBR check avoids even the root download.
        assert_eq!(task.tuner().pages, 0);
        assert_eq!(task.now(), 0);
    }

    #[test]
    fn window_completes_within_one_segment() {
        let pts = grid(400);
        let ch = channel(&pts, 5);
        let range = Circle::new(Point::new(50.0, 50.0), 60.0);
        let start = 999;
        let mut task = WindowQueryTask::new(&ch, range, start);
        let finish = task.run_to_completion();
        let root = ch.next_root_arrival(start);
        assert!(finish <= root + ch.layout().index_len() + 1);
    }

    #[test]
    fn zero_radius_range_finds_exact_point() {
        let pts = grid(100);
        let ch = channel(&pts, 0);
        let range = Circle::new(Point::new(30.0, 20.0), 0.0);
        let mut task = WindowQueryTask::new(&ch, range, 0);
        task.run_to_completion();
        assert_eq!(task.hits().len(), 1);
        assert_eq!(task.hits()[0].0, Point::new(30.0, 20.0));
    }

    #[test]
    fn into_hits_returns_collected() {
        let pts = grid(50);
        let ch = channel(&pts, 0);
        let range = Circle::new(Point::new(0.0, 0.0), 25.0);
        let mut task = WindowQueryTask::new(&ch, range, 0);
        task.run_to_completion();
        let n = task.hits().len();
        assert_eq!(task.into_hits().len(), n);
    }
}
