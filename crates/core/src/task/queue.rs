//! Candidate-queue backends for the broadcast NN search task.
//!
//! The search processes candidates strictly in arrival order and parks —
//! never drops — entries condemned by the current bound (delayed pruning,
//! §4.2.4). Two interchangeable backends realize that discipline:
//!
//! * [`ArrivalHeap`] — the production backend: a binary min-heap keyed
//!   `(arrival, node id)` giving O(1) [`CandidateQueue::next_arrival`]
//!   peeks and O(log n) pops, with **lazy** pruning: only the heap front
//!   is tested against the bound. This is sound because between
//!   re-targeting switches the bound only tightens, so an entry
//!   condemnable now is still condemnable when it surfaces at the front;
//!   [`CandidateQueue::realize`] forces all deferred decisions right
//!   before a switch, where the bound changes non-monotonically.
//! * [`LinearQueue`] — the paper-literal reference: a flat `Vec` with
//!   O(n) scans per operation and **eager** pruning after every bound
//!   update, exactly the pre-optimization behaviour. Compiled only for
//!   tests and the `linear-reference` benchmark feature.
//!
//! Both backends must produce byte-identical search traces; the property
//! tests in `crate::task::nn` assert this across all four algorithms.
//! Node ids break (arrival, node) ordering ties deterministically — the
//! same discipline `WindowQueryTask` uses — although arrivals of distinct
//! nodes on one channel are in fact always distinct (one page per slot).

use std::collections::BinaryHeap;
use tnn_geom::Rect;
use tnn_rtree::NodeId;

/// One queued candidate node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueueEntry {
    /// Next broadcast slot carrying this node.
    pub arrival: u64,
    /// The node's id in the on-air R-tree.
    pub node: NodeId,
    /// The node's MBR (from its parent entry).
    pub mbr: Rect,
}

impl QueueEntry {
    #[inline]
    fn key(&self) -> (u64, u32) {
        (self.arrival, self.node.0)
    }
}

/// Storage discipline for the candidate queue of a broadcast NN search.
///
/// Implementations may defer pruning decisions for entries that are not
/// next in arrival order ([`ArrivalHeap`] does), relying on the caller's
/// guarantee that the condemnation predicate only grows between
/// [`CandidateQueue::realize`] calls.
///
/// `Send` is part of the contract so that scratch buffers (and the
/// engines pooling them) can cross worker threads.
pub trait CandidateQueue: Default + std::fmt::Debug + Send {
    /// `true` when the search should evaluate the pruning predicate at
    /// push time and divert condemned children straight to the parked
    /// list (the bound is already final when a step pushes its children,
    /// so this is observationally identical to parking them at the next
    /// settle). Keeps the heap populated with near-viable entries only;
    /// the linear reference leaves it `false` to reproduce the
    /// pre-optimization cost model (full rescans) faithfully.
    const PREFILTERS_PUSHES: bool;

    /// `true` for the pre-optimization reference backend: harnesses that
    /// A/B the hot path use this to reproduce the original cost model
    /// faithfully (e.g. fresh buffer allocations per query instead of
    /// scratch reuse). Never affects results, only costs.
    const IS_REFERENCE: bool;

    /// Queues a candidate.
    fn push(&mut self, e: QueueEntry);

    /// Arrival slot of the next downloadable candidate. Callers must have
    /// settled the queue (via [`CandidateQueue::settle`]) since the last
    /// bound change for the front to be guaranteed viable.
    fn next_arrival(&self) -> Option<u64>;

    /// Removes and returns the next downloadable candidate (minimal
    /// `(arrival, node id)`).
    fn pop_next(&mut self) -> Option<QueueEntry>;

    /// Number of entries currently held (including, for lazy backends,
    /// entries whose pruning decision is still deferred).
    fn len(&self) -> usize;

    /// `true` when no candidates remain.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Applies the pruning predicate after a bound update, moving
    /// condemned entries into `parked`. Lazy backends need only guarantee
    /// that the *front* entry (the one [`CandidateQueue::pop_next`] would
    /// return) is not condemned.
    fn settle(
        &mut self,
        condemn: &mut dyn FnMut(&QueueEntry) -> bool,
        parked: &mut Vec<QueueEntry>,
    );

    /// Forces every deferred pruning decision, moving all condemned
    /// entries into `parked`. Required before the condemnation predicate
    /// changes non-monotonically (a re-targeting switch).
    fn realize(
        &mut self,
        condemn: &mut dyn FnMut(&QueueEntry) -> bool,
        parked: &mut Vec<QueueEntry>,
    );

    /// Visits every held entry in unspecified order (bound seeding after
    /// a switch).
    fn for_each(&self, f: &mut dyn FnMut(&QueueEntry));

    /// Removes all entries, keeping allocated capacity (scratch reuse).
    fn clear(&mut self);
}

/// Min-heap slot: reversed `(arrival, node id)` order so that
/// `BinaryHeap`'s max-top yields the earliest arrival.
#[derive(Debug, Clone, Copy)]
struct HeapSlot(QueueEntry);

impl PartialEq for HeapSlot {
    fn eq(&self, other: &Self) -> bool {
        self.0.key() == other.0.key()
    }
}

impl Eq for HeapSlot {}

impl PartialOrd for HeapSlot {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapSlot {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.0.key().cmp(&self.0.key())
    }
}

/// The production candidate queue: binary min-heap over
/// `(arrival, node id)` with lazily settled pruning (see module docs).
#[derive(Debug, Default)]
pub struct ArrivalHeap {
    heap: BinaryHeap<HeapSlot>,
}

impl CandidateQueue for ArrivalHeap {
    const PREFILTERS_PUSHES: bool = true;
    const IS_REFERENCE: bool = false;

    #[inline]
    fn push(&mut self, e: QueueEntry) {
        self.heap.push(HeapSlot(e));
    }

    #[inline]
    fn next_arrival(&self) -> Option<u64> {
        self.heap.peek().map(|s| s.0.arrival)
    }

    #[inline]
    fn pop_next(&mut self) -> Option<QueueEntry> {
        self.heap.pop().map(|s| s.0)
    }

    #[inline]
    fn len(&self) -> usize {
        self.heap.len()
    }

    fn settle(
        &mut self,
        condemn: &mut dyn FnMut(&QueueEntry) -> bool,
        parked: &mut Vec<QueueEntry>,
    ) {
        while let Some(front) = self.heap.peek() {
            if !condemn(&front.0) {
                break;
            }
            parked.push(self.heap.pop().expect("peeked entry exists").0);
        }
    }

    fn realize(
        &mut self,
        condemn: &mut dyn FnMut(&QueueEntry) -> bool,
        parked: &mut Vec<QueueEntry>,
    ) {
        // Rare (at most once per query, on a Hybrid switch): drain, split,
        // re-heapify survivors in O(n).
        let slots = std::mem::take(&mut self.heap).into_vec();
        let mut keep = Vec::with_capacity(slots.len());
        for slot in slots {
            if condemn(&slot.0) {
                parked.push(slot.0);
            } else {
                keep.push(slot);
            }
        }
        self.heap = BinaryHeap::from(keep);
    }

    fn for_each(&self, f: &mut dyn FnMut(&QueueEntry)) {
        for slot in self.heap.iter() {
            f(&slot.0);
        }
    }

    fn clear(&mut self) {
        self.heap.clear();
    }
}

/// The paper-literal reference queue: flat `Vec`, O(n) scans, eager
/// pruning — the exact pre-optimization behaviour, kept so benches and
/// property tests can compare against it.
#[cfg(any(test, feature = "linear-reference"))]
#[derive(Debug, Default)]
pub struct LinearQueue {
    entries: Vec<QueueEntry>,
}

#[cfg(any(test, feature = "linear-reference"))]
impl CandidateQueue for LinearQueue {
    const PREFILTERS_PUSHES: bool = false;
    const IS_REFERENCE: bool = true;

    fn push(&mut self, e: QueueEntry) {
        self.entries.push(e);
    }

    fn next_arrival(&self) -> Option<u64> {
        self.entries.iter().map(|e| e.arrival).min()
    }

    fn pop_next(&mut self) -> Option<QueueEntry> {
        let idx = self
            .entries
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| e.key())
            .map(|(i, _)| i)?;
        Some(self.entries.swap_remove(idx))
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn settle(
        &mut self,
        condemn: &mut dyn FnMut(&QueueEntry) -> bool,
        parked: &mut Vec<QueueEntry>,
    ) {
        // Eager: decide every entry right away (the pre-optimization
        // `purge()` rescan).
        parked.extend(self.entries.extract_if(.., |e| condemn(e)));
    }

    fn realize(
        &mut self,
        condemn: &mut dyn FnMut(&QueueEntry) -> bool,
        parked: &mut Vec<QueueEntry>,
    ) {
        self.settle(condemn, parked);
    }

    fn for_each(&self, f: &mut dyn FnMut(&QueueEntry)) {
        for e in &self.entries {
            f(e);
        }
    }

    fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tnn_geom::Point;

    fn entry(arrival: u64, node: u32) -> QueueEntry {
        QueueEntry {
            arrival,
            node: NodeId(node),
            mbr: Rect::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0)),
        }
    }

    fn drain_order<Q: CandidateQueue>(mut q: Q) -> Vec<(u64, u32)> {
        let mut out = Vec::new();
        while let Some(e) = q.pop_next() {
            out.push((e.arrival, e.node.0));
        }
        out
    }

    #[test]
    fn both_backends_pop_in_arrival_then_node_order() {
        for seq in [
            vec![(5, 1), (3, 2), (9, 0), (3, 1), (7, 7)],
            vec![(1, 1)],
            vec![(2, 3), (2, 1), (2, 2)],
        ] {
            let mut heap = ArrivalHeap::default();
            let mut linear = LinearQueue::default();
            for &(a, n) in &seq {
                heap.push(entry(a, n));
                linear.push(entry(a, n));
            }
            let mut expect = seq.clone();
            expect.sort_unstable();
            assert_eq!(drain_order(heap), expect);
            assert_eq!(drain_order(linear), expect);
        }
    }

    #[test]
    fn heap_peek_matches_pop() {
        let mut q = ArrivalHeap::default();
        for (a, n) in [(8, 0), (2, 5), (4, 1)] {
            q.push(entry(a, n));
        }
        while let Some(a) = q.next_arrival() {
            assert_eq!(q.pop_next().unwrap().arrival, a);
        }
        assert!(q.is_empty());
    }

    #[test]
    fn settle_parks_lazily_vs_eagerly() {
        // Condemn arrivals >= 10. The heap front (arrival 1) is viable, so
        // the lazy backend parks nothing even though a condemned entry is
        // buried; the eager backend parks it immediately. `realize` brings
        // both to the same state.
        let mut heap = ArrivalHeap::default();
        let mut linear = LinearQueue::default();
        for (a, n) in [(1, 0), (15, 1), (3, 2)] {
            heap.push(entry(a, n));
            linear.push(entry(a, n));
        }
        let mut condemn = |e: &QueueEntry| e.arrival >= 10;
        let (mut hp, mut lp) = (Vec::new(), Vec::new());
        heap.settle(&mut condemn, &mut hp);
        linear.settle(&mut condemn, &mut lp);
        assert!(hp.is_empty());
        assert_eq!(lp.len(), 1);
        heap.realize(&mut condemn, &mut hp);
        assert_eq!(hp.len(), 1);
        assert_eq!(heap.len(), linear.len());
    }

    #[test]
    fn settle_drains_condemned_front() {
        let mut heap = ArrivalHeap::default();
        for (a, n) in [(1, 0), (2, 1), (30, 2)] {
            heap.push(entry(a, n));
        }
        let mut parked = Vec::new();
        heap.settle(&mut |e| e.arrival < 10, &mut parked);
        assert_eq!(parked.len(), 2);
        assert_eq!(heap.next_arrival(), Some(30));
    }

    #[test]
    fn clear_keeps_nothing() {
        let mut heap = ArrivalHeap::default();
        heap.push(entry(1, 1));
        heap.clear();
        assert!(heap.is_empty());
        assert_eq!(heap.next_arrival(), None);
    }
}
