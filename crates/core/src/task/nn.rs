//! The broadcast branch-and-bound search task: exact or approximate
//! nearest-neighbor search over an on-air R-tree, in plain or transitive
//! metric, with mid-flight re-targeting (the Hybrid-NN switches).
//!
//! ## Traversal discipline
//!
//! Candidates are processed strictly in **arrival order**. With the index
//! laid out in preorder, every child follows its parent within the same
//! index segment, so one search completes within a single segment pass —
//! exactly why the paper broadcasts the tree depth-first.
//!
//! The candidate queue is a binary min-heap keyed `(arrival, node id)`
//! ([`ArrivalHeap`]), so [`BroadcastNnSearch::next_arrival`] is O(1) and
//! [`BroadcastNnSearch::step`] is O(log n) — the event loops interleaving
//! searches over multiple channels peek every iteration, and batch
//! simulations run millions of steps. The paper-literal `Vec`-scan queue
//! is kept as [`LinearNnSearchTask`] (tests and the `linear-reference`
//! bench feature only); the two must produce byte-identical traces, which
//! the property tests below verify across all four algorithms.
//!
//! ## Delayed pruning (paper §4.2.4)
//!
//! All children of a visited node enter the queue; pruning is decided
//! when an entry would be downloaded, with the bound *as of that moment*.
//! Because the bound only changes when this task downloads a page (or is
//! re-targeted), deciding right after each download is equivalent to
//! deciding at pop time — with one exception: a Hybrid-NN **switch** can
//! revive an entry that the old metric had condemned. Pruned entries are
//! therefore *parked*, not dropped; a switch at time `t` re-examines every
//! parked entry whose arrival is still in the future (arrival ≥ t) under
//! the new metric, faithfully reproducing the paper's remedy ("the MBR
//! which contains the answer to that new query may have been pruned …
//! the algorithm delays the pruning process"). Parked and pruned entries
//! cost neither pages nor time.
//!
//! The heap backend exploits the same pop-time equivalence a second way:
//! between switches the bound only tightens, so pruning decisions for
//! entries buried in the heap are *deferred* until they surface at the
//! front; immediately before a switch every deferred decision is realized
//! under the old metric, restoring the exact eager-purge state.
//!
//! ## Bound maintenance
//!
//! The upper bound is maintained "in the same way as in the exact NN
//! search" (§5.1): from visited data points and the guaranteed
//! `MinMaxDist` / `MinMaxTransDist` of seen child MBRs (§4.2.3, by the
//! MBR face property). Guaranteed pruning compares `MinDist`-style lower
//! bounds against it.
//!
//! In ANN mode the same bound sizes the probabilistic search region: an
//! entry is additionally pruned when the overlap between its MBR and the
//! circle (Heuristic 1) or transitive-distance ellipse (Heuristic 2) of
//! the current bound is at most an `α` fraction of the MBR's area —
//! i.e., when the (uniformity-estimated) probability that the node beats
//! the bound is small. The MBR that produced the current bound is
//! **preserved** ("the MBR which gives the latest upper bound has to be
//! preserved and visited"), which guarantees an ANN search always
//! reaches a real data point.

use super::queue::{ArrivalHeap, CandidateQueue, QueueEntry};
use crate::{AnnMode, SearchMode};
use tnn_broadcast::{ChannelView, Tuner};
use tnn_geom::Point;
use tnn_rtree::{NodeId, ObjectId, RTree};

#[cfg(any(test, feature = "linear-reference"))]
use super::queue::LinearQueue;

/// A broadcast nearest-neighbor search task on one channel, generic over
/// the candidate-queue backend.
///
/// Use the [`NnSearchTask`] alias (heap backend) unless you are
/// explicitly comparing against the linear-scan reference. Drive it with
/// `next_arrival` / `step` from an event loop that interleaves tasks over
/// multiple channels in global time order; re-target it with
/// [`BroadcastNnSearch::switch_query_point`] (Hybrid case 2) or
/// [`BroadcastNnSearch::switch_to_transitive`] (Hybrid case 3).
#[derive(Debug)]
pub struct BroadcastNnSearch<'a, Q: CandidateQueue> {
    channel: ChannelView<'a>,
    mode: SearchMode,
    ann: AnnMode,
    queue: Q,
    /// Entries condemned by the current metric but kept for possible
    /// revival by a re-targeting switch (delayed pruning, §4.2.4).
    parked: Vec<QueueEntry>,
    /// Best real data point seen so far, under the *current* mode.
    best: Option<(Point, ObjectId)>,
    /// Objective value of `best` (∞ when none), in the mode's objective
    /// space (squared distance for point mode — see
    /// [`SearchMode::objective_at`]).
    best_value: f64,
    /// Upper bound: a value guaranteed to be achieved by some data point
    /// (from visited points and `MinMaxDist`-style bounds). Prunes
    /// exactly in eNN mode and sizes the probabilistic region in ANN
    /// mode.
    upper: f64,
    /// Queued node whose MBR set `upper` — preserved from ANN pruning so
    /// the search always reaches a real point.
    source: Option<NodeId>,
    tuner: Tuner,
    /// Task-local clock: advanced by downloads only.
    now: u64,
    /// Peak of queued + parked entries — the client-memory figure the
    /// paper bounds in §4.2.4 (see [`BroadcastNnSearch::peak_memory`]).
    peak_memory: usize,
}

/// The production NN search task (heap-ordered candidate queue).
pub type NnSearchTask<'a> = BroadcastNnSearch<'a, ArrivalHeap>;

/// The paper-literal reference task (`Vec`-scan queue, O(n) per step).
/// Exists only so benches and property tests can compare against the
/// pre-optimization behaviour.
#[cfg(any(test, feature = "linear-reference"))]
pub type LinearNnSearchTask<'a> = BroadcastNnSearch<'a, LinearQueue>;

/// Reusable buffers for one [`BroadcastNnSearch`]: thread one through
/// repeated searches (e.g. a query batch) to avoid re-allocating the
/// queue and the parked list per query.
#[derive(Debug, Default)]
pub struct NnScratch<Q: CandidateQueue> {
    queue: Q,
    parked: Vec<QueueEntry>,
}

impl<'a, Q: CandidateQueue> BroadcastNnSearch<'a, Q> {
    /// Starts a search on `channel` at global time `start`; the root is
    /// queued at its next arrival. Accepts a plain `&Channel` (searched
    /// under the channel's own phase) or a [`ChannelView`] carrying a
    /// per-query phase override.
    pub fn new(
        channel: impl Into<ChannelView<'a>>,
        mode: SearchMode,
        ann: AnnMode,
        start: u64,
    ) -> Self {
        Self::with_scratch(channel, mode, ann, start, &mut NnScratch::default())
    }

    /// Like [`BroadcastNnSearch::new`], but takes the queue and parked
    /// buffers from `scratch` (pass the task back via
    /// [`BroadcastNnSearch::recycle`] when done to reuse the capacity).
    pub fn with_scratch(
        channel: impl Into<ChannelView<'a>>,
        mode: SearchMode,
        ann: AnnMode,
        start: u64,
        scratch: &mut NnScratch<Q>,
    ) -> Self {
        let channel = channel.into();
        let mut queue = std::mem::take(&mut scratch.queue);
        let mut parked = std::mem::take(&mut scratch.parked);
        queue.clear();
        parked.clear();
        let root_arrival = channel.next_root_arrival(start);
        queue.push(QueueEntry {
            arrival: root_arrival,
            node: NodeId::ROOT,
            mbr: channel.tree().bounding_rect(),
        });
        BroadcastNnSearch {
            channel,
            mode,
            ann,
            queue,
            parked,
            best: None,
            best_value: f64::INFINITY,
            upper: f64::INFINITY,
            source: None,
            tuner: Tuner::new(),
            now: start,
            peak_memory: 1,
        }
    }

    /// Returns the task's buffers to `scratch` for reuse by a later
    /// search.
    pub fn recycle(self, scratch: &mut NnScratch<Q>) {
        scratch.queue = self.queue;
        scratch.parked = self.parked;
        scratch.queue.clear();
        scratch.parked.clear();
    }

    /// `true` when no downloadable candidates remain (the search result is
    /// final unless a switch revives parked entries).
    #[inline]
    pub fn is_done(&self) -> bool {
        self.queue.is_empty()
    }

    /// Arrival time of the next candidate to download, or `None` when the
    /// search is finished. O(1): the queue front is kept viable by the
    /// settling pass after every bound update.
    #[inline]
    pub fn next_arrival(&self) -> Option<u64> {
        self.queue.next_arrival()
    }

    /// The best data point found so far: `(point, object, objective)`,
    /// with the objective reported as a real distance.
    pub fn best(&self) -> Option<(Point, ObjectId, f64)> {
        self.best
            .map(|(p, o)| (p, o, self.mode.report(self.best_value)))
    }

    /// The current search mode.
    pub fn mode(&self) -> SearchMode {
        self.mode
    }

    /// Page accounting for this task.
    pub fn tuner(&self) -> &Tuner {
        &self.tuner
    }

    /// Task-local clock: the completion slot of the last download (or the
    /// start time before any download). When the queue is empty this is
    /// the task's finish time.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Number of candidate entries currently queued (for the heap backend
    /// this includes entries whose pruning decision is still deferred;
    /// parked entries are not counted). For the client-memory figure the
    /// paper bounds in §4.2.4 use [`BroadcastNnSearch::peak_memory`].
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Peak number of MBR entries held at once — queued **plus** parked,
    /// since delayed pruning keeps condemned entries revivable — the
    /// client-memory figure the paper bounds by `(H−1)·(M−1)` per level
    /// in §4.2.4. Backend-independent: lazy and eager pruning only move
    /// entries between the two sets.
    pub fn peak_memory(&self) -> usize {
        self.peak_memory
    }

    /// Number of entries currently parked by delayed pruning (§4.2.4):
    /// condemned but kept revivable for re-targeting switches. After a
    /// completed search this is the count of candidates pruning saved
    /// from expansion — backend-independent, since lazy and eager
    /// pruning classify entries identically by completion.
    pub fn parked_len(&self) -> usize {
        self.parked.len()
    }

    /// Downloads the next candidate node and processes it. Returns the
    /// arrival slot handled, or `None` when already done.
    pub fn step(&mut self) -> Option<u64> {
        let entry = self.queue.pop_next()?;
        self.now = entry.arrival + 1;
        self.tuner.download(entry.arrival);

        let node = self.channel.node(entry.node);
        if let Some(children) = node.children() {
            // Bound updates from the guaranteed MinMaxDist-style bound of
            // every child MBR (paper §4.2.3); the child that sets the
            // bound becomes the preserved anchor.
            for c in children {
                let safe = self.mode.safe_upper_objective(&c.mbr);
                if safe < self.upper {
                    self.upper = safe;
                    self.source = Some(c.child);
                }
            }
            // Preservation chain: if this node anchored the estimate and
            // no child tightened it, re-anchor to the most promising
            // child so the search provably reaches a data point.
            if self.source == Some(entry.node) {
                let best_child = children
                    .iter()
                    .min_by(|a, b| {
                        self.mode
                            .lower_bound_objective(&a.mbr)
                            .total_cmp(&self.mode.lower_bound_objective(&b.mbr))
                    })
                    .expect("packed nodes are non-empty");
                self.source = Some(best_child.child);
            }
            // Delayed pruning: every child is kept — queued or parked,
            // never dropped. The bound is final for this step (updated
            // from all children above), so a backend that pre-filters
            // pushes can park condemned children immediately; deferring
            // the decision to the settling pass below is observationally
            // identical. Either way nothing costs pages or time.
            if Q::PREFILTERS_PUSHES {
                let ctx = self.prune_context();
                for c in children {
                    let arrival = self.channel.next_node_arrival(c.child, self.now);
                    let e = QueueEntry {
                        arrival,
                        node: c.child,
                        mbr: c.mbr,
                    };
                    if ctx.condemns(&e) {
                        self.parked.push(e);
                    } else {
                        self.queue.push(e);
                    }
                }
            } else {
                for c in children {
                    let arrival = self.channel.next_node_arrival(c.child, self.now);
                    self.queue.push(QueueEntry {
                        arrival,
                        node: c.child,
                        mbr: c.mbr,
                    });
                }
            }
        } else if let Some(points) = node.points() {
            // Scan the leaf for its best point, in objective space (point
            // mode never touches a square root here).
            let mode = self.mode;
            let mut leaf_best: Option<(f64, Point, ObjectId)> = None;
            for e in points {
                let v = mode.objective_at(e.point);
                if leaf_best.is_none_or(|(b, _, _)| v < b) {
                    leaf_best = Some((v, e.point, e.object));
                }
            }
            if let Some((v, pt, object)) = leaf_best {
                if v < self.best_value {
                    self.best = Some((pt, object));
                    self.best_value = v;
                }
                if v < self.upper {
                    self.upper = v;
                    self.source = None;
                }
            }
            if self.source == Some(entry.node) {
                // The anchored leaf has been inspected; real points now
                // back the search (best is non-empty).
                self.source = None;
            }
        }

        self.settle();
        Some(entry.arrival)
    }

    /// Runs the task to completion, returning its finish time. Only
    /// useful when no other task needs interleaving (e.g. Window-Based's
    /// sequential NN queries).
    pub fn run_to_completion(&mut self) -> u64 {
        while self.step().is_some() {}
        self.now
    }

    /// Hybrid-NN **case 2** (paper §4.2.2–§4.2.3): the other channel's NN
    /// search finished first (at time `at`) with result `s`; re-target
    /// this search to find the nearest neighbor of `s` on the *remaining
    /// portion* of this channel's R-tree.
    ///
    /// The temporary result (if any) is re-evaluated under the new query
    /// point, and the smallest `MinDist` among the queued MBRs seeds the
    /// bound ("the smallest MinDist is used to update the upper bound"),
    /// with that MBR preserved.
    pub fn switch_query_point(&mut self, new_q: Point, at: u64) {
        self.realize_pending();
        self.mode = SearchMode::Point { q: new_q };
        self.rebase_after_switch(at);
    }

    /// Hybrid-NN **case 3** (paper §4.2.3, Algorithm 2): the other
    /// channel finished first (at time `at`) with result `r`; change this
    /// search's metric to the transitive distance through `p` and `r`,
    /// using `MinTransDist` for pruning and `MinMaxTransDist` for the
    /// guaranteed initial bound over the queued MBRs.
    pub fn switch_to_transitive(&mut self, p: Point, r: Point, at: u64) {
        self.realize_pending();
        self.mode = SearchMode::Transitive { p, r };
        self.rebase_after_switch(at);
    }

    /// Snapshots the bound state into a [`PruneContext`] (borrowing
    /// nothing from `self`, so the queue and parked list stay free for
    /// mutation while the predicate runs).
    fn prune_context(&self) -> PruneContext<'a> {
        let channel = self.channel;
        PruneContext {
            mode: self.mode,
            upper: self.upper,
            // One conversion per bound update instead of one per entry
            // tested (a sqrt in point mode); only read under ANN pruning.
            region_bound: if self.ann.is_approximate() {
                self.mode.report(self.upper)
            } else {
                self.upper
            },
            ann: self.ann,
            source: self.source,
            tree: channel.tree(),
        }
    }

    /// Hands the pruning predicate to `apply` together with the queue and
    /// the parked list, then refreshes the peak-memory counter.
    fn with_condemn(
        &mut self,
        apply: impl FnOnce(&mut Q, &mut dyn FnMut(&QueueEntry) -> bool, &mut Vec<QueueEntry>),
    ) {
        let ctx = self.prune_context();
        let mut condemn = move |e: &QueueEntry| ctx.condemns(e);
        apply(&mut self.queue, &mut condemn, &mut self.parked);
        self.peak_memory = self.peak_memory.max(self.queue.len() + self.parked.len());
    }

    /// Parks every queued entry that is provably (exact) or probably
    /// (ANN) useless under the current bound; the preserved anchor is
    /// exempt. The heap backend defers decisions for non-front entries —
    /// sound because the bound only tightens between switches. Parked
    /// entries cost no pages and no time, and remain revivable by a later
    /// switch.
    fn settle(&mut self) {
        self.with_condemn(|queue, condemn, parked| queue.settle(condemn, parked));
    }

    /// Realizes every deferred pruning decision under the *current* (old)
    /// metric — must run before a switch changes the metric, so that the
    /// parked/queued split matches the eager-pruning semantics exactly.
    fn realize_pending(&mut self) {
        self.with_condemn(|queue, condemn, parked| queue.realize(condemn, parked));
    }

    /// Shared re-targeting logic: revive parked entries that are still in
    /// the future, re-evaluate the temporary result, seed the bound from
    /// the queued MBRs, re-purge under the new metric.
    fn rebase_after_switch(&mut self, at: u64) {
        // Delayed pruning, realized: entries condemned by the *old*
        // metric whose pages have not yet been broadcast are candidates
        // again; entries whose arrival already passed were definitively
        // decided under the old metric (pop-time semantics).
        for e in self.parked.extract_if(.., |e| e.arrival >= at) {
            self.queue.push(e);
        }
        self.parked.clear();

        self.best_value = match self.best {
            Some((pt, _)) => self.mode.objective_at(pt),
            None => f64::INFINITY,
        };
        self.upper = self.best_value;
        self.source = None;
        // Initial bound update over the queue (paper §4.2.3): seed with
        // the guaranteed achievable bound of the queued MBRs — case 3's
        // text names MinMaxTransDist explicitly; we use the symmetric
        // MinMaxDist for case 2. (The case-2 paragraph literally says
        // "MinDist", but MinDist is a lower bound — seeding the bound
        // with it degenerates the remaining search into a blind greedy
        // descent whenever the switch fires near the root, which
        // contradicts the reported behaviour; the face-property bound is
        // the sound reading.) Node id breaks bound ties so the anchor
        // choice is independent of the queue backend's iteration order.
        let mode = self.mode;
        let mut anchor: Option<(NodeId, f64)> = None;
        self.queue.for_each(&mut |e| {
            let safe = mode.safe_upper_objective(&e.mbr);
            let better = match anchor {
                None => true,
                Some((n, b)) => match safe.total_cmp(&b) {
                    std::cmp::Ordering::Less => true,
                    std::cmp::Ordering::Equal => e.node.0 < n.0,
                    std::cmp::Ordering::Greater => false,
                },
            };
            if better {
                anchor = Some((e.node, safe));
            }
        });
        if let Some((node, bound)) = anchor {
            if bound < self.upper {
                self.upper = bound;
                self.source = Some(node);
            } else if self.best.is_none() {
                // Keep a live anchor even when the bound did not improve,
                // so the re-targeted search still reaches a real point.
                self.source = Some(node);
            }
        }
        self.settle();
    }
}

/// Copies of the bound state needed to decide whether a candidate is
/// condemned — the single pruning predicate shared by push-time
/// pre-filtering, settling, and switch-time realization, so the rule can
/// never drift between them.
struct PruneContext<'t> {
    mode: SearchMode,
    /// Current upper bound, in objective space.
    upper: f64,
    /// The same bound as a real distance (sizes the ANN search region).
    region_bound: f64,
    ann: AnnMode,
    /// The preserved anchor, exempt from pruning.
    source: Option<NodeId>,
    tree: &'t RTree,
}

impl PruneContext<'_> {
    fn condemns(&self, e: &QueueEntry) -> bool {
        if Some(e.node) == self.source {
            return false;
        }
        // Guaranteed pruning (eNN rule), in objective space.
        if self.mode.lower_bound_objective(&e.mbr) > self.upper {
            return true;
        }
        // Probabilistic pruning against the bound's search region
        // (Heuristics 1 & 2).
        if self.ann.is_approximate() {
            let ratio = self.mode.overlap_ratio(&e.mbr, self.region_bound);
            if self
                .ann
                .prunes(ratio, self.tree.depth_of(e.node), self.tree.height())
            {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tnn_broadcast::{BroadcastParams, Channel};
    use tnn_rtree::{PackingAlgorithm, RTree};

    fn channel(pts: &[Point], phase: u64) -> Channel {
        let params = BroadcastParams::new(64);
        let tree = RTree::build(pts, params.rtree_params(), PackingAlgorithm::Str).unwrap();
        Channel::new(Arc::new(tree), params, phase)
    }

    fn grid(n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| Point::new((i * 37 % 211) as f64, (i * 53 % 223) as f64))
            .collect()
    }

    #[test]
    fn exact_search_finds_true_nn() {
        let pts = grid(300);
        let ch = channel(&pts, 17);
        for q in [
            Point::new(0.0, 0.0),
            Point::new(105.0, 111.0),
            Point::new(-50.0, 300.0),
        ] {
            let mut task = NnSearchTask::new(&ch, SearchMode::Point { q }, AnnMode::Exact, 5);
            task.run_to_completion();
            let (_, _, got) = task.best().expect("search finds a point");
            let brute = pts.iter().map(|p| q.dist(*p)).fold(f64::INFINITY, f64::min);
            assert!((got - brute).abs() < 1e-9, "query {q:?}");
        }
    }

    #[test]
    fn exact_transitive_search_finds_true_min() {
        let pts = grid(250);
        let ch = channel(&pts, 3);
        let p = Point::new(10.0, 20.0);
        let r = Point::new(180.0, 150.0);
        let mut task = NnSearchTask::new(&ch, SearchMode::Transitive { p, r }, AnnMode::Exact, 0);
        task.run_to_completion();
        let (_, _, got) = task.best().unwrap();
        let brute = pts
            .iter()
            .map(|s| p.dist(*s) + s.dist(r))
            .fold(f64::INFINITY, f64::min);
        assert!((got - brute).abs() < 1e-9);
    }

    #[test]
    fn search_downloads_fewer_pages_than_full_index() {
        let pts = grid(500);
        let ch = channel(&pts, 0);
        let q = Point::new(100.0, 100.0);
        let mut task = NnSearchTask::new(&ch, SearchMode::Point { q }, AnnMode::Exact, 0);
        task.run_to_completion();
        assert!(task.tuner().pages < ch.tree().num_nodes() as u64 / 2);
    }

    #[test]
    fn search_completes_within_one_index_segment() {
        // Preorder layout: a search never waits for the next bucket.
        let pts = grid(400);
        let ch = channel(&pts, 29);
        let q = Point::new(55.0, 77.0);
        let start = 123;
        let mut task = NnSearchTask::new(&ch, SearchMode::Point { q }, AnnMode::Exact, start);
        let finish = task.run_to_completion();
        let root_arrival = ch.next_root_arrival(start);
        assert!(finish <= root_arrival + ch.layout().index_len() + 1);
    }

    #[test]
    fn ann_search_returns_a_real_point() {
        let pts = grid(400);
        let ch = channel(&pts, 7);
        let q = Point::new(100.0, 100.0);
        for factor in [0.25, 1.0, 4.0] {
            let mut task =
                NnSearchTask::new(&ch, SearchMode::Point { q }, AnnMode::Dynamic { factor }, 0);
            task.run_to_completion();
            let (pt, _, v) = task.best().expect("ANN must still find a point");
            assert!((q.dist(pt) - v).abs() < 1e-9);
        }
    }

    #[test]
    fn ann_never_downloads_more_than_exact() {
        let pts = grid(600);
        let ch = channel(&pts, 0);
        let q = Point::new(160.0, 40.0);
        let mut exact = NnSearchTask::new(&ch, SearchMode::Point { q }, AnnMode::Exact, 0);
        exact.run_to_completion();
        let mut ann = NnSearchTask::new(
            &ch,
            SearchMode::Point { q },
            AnnMode::Dynamic { factor: 1.0 },
            0,
        );
        ann.run_to_completion();
        assert!(ann.tuner().pages <= exact.tuner().pages);
        // And the approximate answer can only be farther.
        let (_, _, ve) = exact.best().unwrap();
        let (_, _, va) = ann.best().unwrap();
        assert!(va >= ve - 1e-9);
    }

    #[test]
    fn switch_query_point_mid_search() {
        let pts = grid(300);
        let ch = channel(&pts, 11);
        let p = Point::new(0.0, 0.0);
        let s = Point::new(150.0, 180.0);
        let mut task = NnSearchTask::new(&ch, SearchMode::Point { q: p }, AnnMode::Exact, 0);
        // Let it make some progress, then re-target.
        for _ in 0..3 {
            task.step();
        }
        let at = task.now();
        task.switch_query_point(s, at);
        task.run_to_completion();
        let (pt, _, v) = task.best().expect("re-targeted search finds a point");
        assert!((s.dist(pt) - v).abs() < 1e-9);
        // The result is feasible (a real dataset point), though possibly
        // only the NN of the *remaining* portion.
        assert!(pts.contains(&pt));
    }

    #[test]
    fn switch_to_transitive_mid_search() {
        let pts = grid(300);
        let ch = channel(&pts, 11);
        let p = Point::new(20.0, 30.0);
        let r = Point::new(190.0, 10.0);
        let mut task = NnSearchTask::new(&ch, SearchMode::Point { q: p }, AnnMode::Exact, 0);
        for _ in 0..2 {
            task.step();
        }
        let at = task.now();
        task.switch_to_transitive(p, r, at);
        task.run_to_completion();
        let (pt, _, v) = task.best().expect("transitive search finds a point");
        assert!((p.dist(pt) + pt.dist(r) - v).abs() < 1e-9);
        assert!(pts.contains(&pt));
    }

    #[test]
    fn switch_revives_parked_entries_still_in_future() {
        // Build a search whose first metric parks far-away nodes, then
        // re-target so that a parked node holds the new optimum: the
        // revived entry must be visited and the true new NN found, as
        // long as the switch happens at the task's own clock (all parked
        // arrivals are then still in the future — preorder guarantees
        // descendants of unvisited subtrees broadcast later).
        let mut pts = grid(200);
        // A lone far-away point that a p-centred search will park early.
        pts.push(Point::new(5_000.0, 5_000.0));
        let ch = channel(&pts, 0);
        let p = Point::new(0.0, 0.0);
        let mut task = NnSearchTask::new(&ch, SearchMode::Point { q: p }, AnnMode::Exact, 0);
        // Progress until the NN of p is essentially settled.
        for _ in 0..6 {
            task.step();
        }
        let at = task.now();
        // Re-target to the far corner: only the parked outlier is close.
        task.switch_query_point(Point::new(5_100.0, 5_100.0), at);
        task.run_to_completion();
        let (pt, _, _) = task.best().unwrap();
        assert_eq!(
            pt,
            Point::new(5_000.0, 5_000.0),
            "revival must reach the parked outlier"
        );
    }

    #[test]
    fn switch_immediately_after_start_is_safe() {
        let pts = grid(100);
        let ch = channel(&pts, 0);
        let p = Point::new(5.0, 5.0);
        let mut task = NnSearchTask::new(&ch, SearchMode::Point { q: p }, AnnMode::Exact, 0);
        // No steps yet — queue holds only the root.
        task.switch_to_transitive(p, Point::new(100.0, 100.0), 0);
        task.run_to_completion();
        assert!(task.best().is_some());
    }

    #[test]
    fn single_point_dataset() {
        let pts = vec![Point::new(42.0, 17.0)];
        let ch = channel(&pts, 0);
        let q = Point::new(0.0, 0.0);
        let mut task = NnSearchTask::new(&ch, SearchMode::Point { q }, AnnMode::Exact, 0);
        task.run_to_completion();
        let (pt, _, v) = task.best().unwrap();
        assert_eq!(pt, Point::new(42.0, 17.0));
        assert!((v - q.dist(pt)).abs() < 1e-12);
        assert_eq!(task.tuner().pages, 1); // the root is the only node
    }

    #[test]
    fn arrivals_are_nondecreasing() {
        let pts = grid(500);
        let ch = channel(&pts, 31);
        let q = Point::new(33.0, 44.0);
        let mut task = NnSearchTask::new(&ch, SearchMode::Point { q }, AnnMode::Exact, 9);
        let mut last = 0;
        while let Some(a) = task.step() {
            assert!(a >= last, "arrival order violated");
            last = a;
        }
    }

    #[test]
    fn fixed_alpha_mode_works() {
        let pts = grid(400);
        let ch = channel(&pts, 0);
        let q = Point::new(100.0, 100.0);
        let mut task = NnSearchTask::new(
            &ch,
            SearchMode::Point { q },
            AnnMode::Fixed { alpha: 0.5 },
            0,
        );
        task.run_to_completion();
        assert!(task.best().is_some());
    }

    #[test]
    fn peak_memory_within_paper_memory_bound() {
        // §4.2.4: worst-case client memory (H − 1) × (M − 1) entries for
        // the pending queue, plus the parked entries that delayed pruning
        // keeps revivable. Check a generous multiple of the paper bound to
        // catch pathological growth, and that the counter is monotone and
        // backend-independent (the equivalence property test covers the
        // latter exhaustively).
        let pts = grid(1000);
        let ch = channel(&pts, 0);
        let q = Point::new(120.0, 120.0);
        let mut task = NnSearchTask::new(&ch, SearchMode::Point { q }, AnnMode::Exact, 0);
        let h = ch.tree().height() as usize;
        let m = ch.tree().params().fanout;
        task.run_to_completion();
        let bound = (h - 1) * (m - 1);
        assert!(
            task.peak_memory() <= 4 * bound + m + 1,
            "peak queued+parked {} vs paper bound {bound}",
            task.peak_memory()
        );
        // The peak can never be below the final resting state.
        assert!(task.peak_memory() >= task.queue_len());
    }

    #[test]
    fn scratch_reuse_is_equivalent_and_reuses_capacity() {
        let pts = grid(400);
        let ch = channel(&pts, 13);
        let mut scratch = NnScratch::<ArrivalHeap>::default();
        for (qx, qy) in [(10.0, 10.0), (150.0, 80.0), (60.0, 200.0)] {
            let q = Point::new(qx, qy);
            let mut fresh = NnSearchTask::new(&ch, SearchMode::Point { q }, AnnMode::Exact, 7);
            fresh.run_to_completion();
            let mut reused = NnSearchTask::with_scratch(
                &ch,
                SearchMode::Point { q },
                AnnMode::Exact,
                7,
                &mut scratch,
            );
            reused.run_to_completion();
            assert_eq!(
                fresh.best().map(|(p, o, _)| (p, o)),
                reused.best().map(|(p, o, _)| (p, o))
            );
            assert_eq!(fresh.tuner().pages, reused.tuner().pages);
            assert_eq!(fresh.now(), reused.now());
            reused.recycle(&mut scratch);
        }
    }

    /// Drives a heap-backed and a linear-backed task in lock step through
    /// an identical schedule (steps and switches) and asserts every
    /// observable is byte-identical.
    fn assert_lockstep_equal(
        ch: &Channel,
        mode: SearchMode,
        ann: AnnMode,
        start: u64,
        switch_after: Option<(usize, SwitchKind)>,
    ) {
        let mut heap = NnSearchTask::new(ch, mode, ann, start);
        let mut linear = LinearNnSearchTask::new(ch, mode, ann, start);
        let mut steps = 0usize;
        loop {
            if let Some((after, kind)) = switch_after {
                if steps == after {
                    let at = heap.now();
                    assert_eq!(at, linear.now());
                    match kind {
                        SwitchKind::Point(q) => {
                            heap.switch_query_point(q, at);
                            linear.switch_query_point(q, at);
                        }
                        SwitchKind::Transitive(p, r) => {
                            heap.switch_to_transitive(p, r, at);
                            linear.switch_to_transitive(p, r, at);
                        }
                    }
                }
            }
            assert_eq!(
                heap.next_arrival(),
                linear.next_arrival(),
                "after {steps} steps"
            );
            assert_eq!(heap.is_done(), linear.is_done());
            let (a, b) = (heap.step(), linear.step());
            assert_eq!(a, b, "divergent download at step {steps}");
            assert_eq!(heap.now(), linear.now());
            assert_eq!(heap.tuner().pages, linear.tuner().pages);
            assert_eq!(heap.best(), linear.best());
            assert_eq!(heap.peak_memory(), linear.peak_memory());
            if a.is_none() {
                break;
            }
            steps += 1;
        }
    }

    #[derive(Clone, Copy)]
    enum SwitchKind {
        Point(Point),
        Transitive(Point, Point),
    }

    #[test]
    fn heap_and_linear_backends_trace_identically() {
        let pts = grid(500);
        let ch = channel(&pts, 23);
        let p = Point::new(80.0, 90.0);
        for ann in [
            AnnMode::Exact,
            AnnMode::Dynamic { factor: 1.0 },
            AnnMode::Fixed { alpha: 0.3 },
        ] {
            assert_lockstep_equal(&ch, SearchMode::Point { q: p }, ann, 5, None);
            assert_lockstep_equal(
                &ch,
                SearchMode::Transitive {
                    p,
                    r: Point::new(200.0, 10.0),
                },
                ann,
                5,
                None,
            );
            assert_lockstep_equal(
                &ch,
                SearchMode::Point { q: p },
                ann,
                0,
                Some((3, SwitchKind::Point(Point::new(190.0, 200.0)))),
            );
            assert_lockstep_equal(
                &ch,
                SearchMode::Point { q: p },
                ann,
                0,
                Some((2, SwitchKind::Transitive(p, Point::new(5.0, 210.0)))),
            );
        }
    }
}
