//! The broadcast branch-and-bound search task: exact or approximate
//! nearest-neighbor search over an on-air R-tree, in plain or transitive
//! metric, with mid-flight re-targeting (the Hybrid-NN switches).
//!
//! ## Traversal discipline
//!
//! Candidates are processed strictly in **arrival order**. With the index
//! laid out in preorder, every child follows its parent within the same
//! index segment, so one search completes within a single segment pass —
//! exactly why the paper broadcasts the tree depth-first.
//!
//! ## Delayed pruning (paper §4.2.4)
//!
//! All children of a visited node enter the queue; pruning is decided
//! when an entry would be downloaded, with the bound *as of that moment*.
//! Because the bound only changes when this task downloads a page (or is
//! re-targeted), deciding right after each download is equivalent to
//! deciding at pop time — with one exception: a Hybrid-NN **switch** can
//! revive an entry that the old metric had condemned. Pruned entries are
//! therefore *parked*, not dropped; a switch at time `t` re-examines every
//! parked entry whose arrival is still in the future (arrival ≥ t) under
//! the new metric, faithfully reproducing the paper's remedy ("the MBR
//! which contains the answer to that new query may have been pruned …
//! the algorithm delays the pruning process"). Parked and pruned entries
//! cost neither pages nor time.
//!
//! ## Bound maintenance
//!
//! The upper bound is maintained "in the same way as in the exact NN
//! search" (§5.1): from visited data points and the guaranteed
//! `MinMaxDist` / `MinMaxTransDist` of seen child MBRs (§4.2.3, by the
//! MBR face property). Guaranteed pruning compares `MinDist`-style lower
//! bounds against it.
//!
//! In ANN mode the same bound sizes the probabilistic search region: an
//! entry is additionally pruned when the overlap between its MBR and the
//! circle (Heuristic 1) or transitive-distance ellipse (Heuristic 2) of
//! the current bound is at most an `α` fraction of the MBR's area —
//! i.e., when the (uniformity-estimated) probability that the node beats
//! the bound is small. The MBR that produced the current bound is
//! **preserved** ("the MBR which gives the latest upper bound has to be
//! preserved and visited"), which guarantees an ANN search always
//! reaches a real data point.

use crate::{AnnMode, SearchMode};
use tnn_broadcast::{Channel, Tuner};
use tnn_geom::{Point, Rect};
use tnn_rtree::{NodeId, ObjectId};

/// One queued candidate node.
#[derive(Debug, Clone, Copy)]
struct QueueEntry {
    arrival: u64,
    node: NodeId,
    mbr: Rect,
}

/// A broadcast nearest-neighbor search task on one channel.
///
/// Drive it with [`NnSearchTask::next_arrival`] / [`NnSearchTask::step`]
/// from an event loop that interleaves tasks over multiple channels in
/// global time order; re-target it with
/// [`NnSearchTask::switch_query_point`] (Hybrid case 2) or
/// [`NnSearchTask::switch_to_transitive`] (Hybrid case 3).
#[derive(Debug)]
pub struct NnSearchTask<'a> {
    channel: &'a Channel,
    mode: SearchMode,
    ann: AnnMode,
    queue: Vec<QueueEntry>,
    /// Entries condemned by the current metric but kept for possible
    /// revival by a re-targeting switch (delayed pruning, §4.2.4).
    parked: Vec<QueueEntry>,
    /// Best real data point seen so far, under the *current* mode.
    best: Option<(Point, ObjectId)>,
    /// Objective value of `best` (∞ when none).
    best_value: f64,
    /// Upper bound: a value guaranteed to be achieved by some data point
    /// (from visited points and `MinMaxDist`-style bounds). Prunes
    /// exactly in eNN mode and sizes the probabilistic region in ANN
    /// mode.
    upper: f64,
    /// Queued node whose MBR set `upper` — preserved from ANN pruning so
    /// the search always reaches a real point.
    source: Option<NodeId>,
    tuner: Tuner,
    /// Task-local clock: advanced by downloads only.
    now: u64,
}

impl<'a> NnSearchTask<'a> {
    /// Starts a search on `channel` at global time `start`; the root is
    /// queued at its next arrival.
    pub fn new(channel: &'a Channel, mode: SearchMode, ann: AnnMode, start: u64) -> Self {
        let root_arrival = channel.next_root_arrival(start);
        NnSearchTask {
            channel,
            mode,
            ann,
            queue: vec![QueueEntry {
                arrival: root_arrival,
                node: NodeId::ROOT,
                mbr: channel.tree().bounding_rect(),
            }],
            parked: Vec::new(),
            best: None,
            best_value: f64::INFINITY,
            upper: f64::INFINITY,
            source: None,
            tuner: Tuner::new(),
            now: start,
        }
    }

    /// `true` when no downloadable candidates remain (the search result is
    /// final unless a switch revives parked entries).
    #[inline]
    pub fn is_done(&self) -> bool {
        self.queue.is_empty()
    }

    /// Arrival time of the next candidate to download, or `None` when the
    /// search is finished.
    pub fn next_arrival(&self) -> Option<u64> {
        self.queue.iter().map(|e| e.arrival).min()
    }

    /// The best data point found so far: `(point, object, objective)`.
    pub fn best(&self) -> Option<(Point, ObjectId, f64)> {
        self.best.map(|(p, o)| (p, o, self.best_value))
    }

    /// The current search mode.
    pub fn mode(&self) -> SearchMode {
        self.mode
    }

    /// Page accounting for this task.
    pub fn tuner(&self) -> &Tuner {
        &self.tuner
    }

    /// Task-local clock: the completion slot of the last download (or the
    /// start time before any download). When the queue is empty this is
    /// the task's finish time.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Peak number of MBR entries held at once (queued + parked) — the
    /// client-memory figure the paper bounds by `(H−1)·(M−1)` in §4.2.4.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Downloads the next candidate node and processes it. Returns the
    /// arrival slot handled, or `None` when already done.
    pub fn step(&mut self) -> Option<u64> {
        let idx = self
            .queue
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| e.arrival)
            .map(|(i, _)| i)?;
        let entry = self.queue.swap_remove(idx);
        self.now = entry.arrival + 1;
        self.tuner.download(entry.arrival);

        let node = self.channel.node(entry.node);
        if let Some(children) = node.children() {
            // Bound updates from the guaranteed MinMaxDist-style bound of
            // every child MBR (paper §4.2.3); the child that sets the
            // bound becomes the preserved anchor.
            for c in children {
                let safe = self.mode.safe_upper(&c.mbr);
                if safe < self.upper {
                    self.upper = safe;
                    self.source = Some(c.child);
                }
            }
            // Preservation chain: if this node anchored the estimate and
            // no child tightened it, re-anchor to the most promising
            // child so the search provably reaches a data point.
            if self.source == Some(entry.node) {
                let best_child = children
                    .iter()
                    .min_by(|a, b| {
                        self.mode
                            .lower_bound(&a.mbr)
                            .total_cmp(&self.mode.lower_bound(&b.mbr))
                    })
                    .expect("packed nodes are non-empty");
                self.source = Some(best_child.child);
            }
            // Delayed pruning: queue *all* children; purging below (and
            // after every later download) filters with the then-current
            // bound, parking — not dropping — the condemned ones.
            for c in children {
                let arrival = self.channel.next_node_arrival(c.child, self.now);
                self.queue.push(QueueEntry {
                    arrival,
                    node: c.child,
                    mbr: c.mbr,
                });
            }
        } else if let Some(points) = node.points() {
            for e in points {
                let v = self.mode.point_objective(e.point);
                if v < self.best_value {
                    self.best = Some((e.point, e.object));
                    self.best_value = v;
                }
                if v < self.upper {
                    self.upper = v;
                    self.source = None;
                }
            }
            if self.source == Some(entry.node) {
                // The anchored leaf has been inspected; real points now
                // back the search (best is non-empty).
                self.source = None;
            }
        }

        self.purge();
        Some(entry.arrival)
    }

    /// Runs the task to completion, returning its finish time. Only
    /// useful when no other task needs interleaving (e.g. Window-Based's
    /// sequential NN queries).
    pub fn run_to_completion(&mut self) -> u64 {
        while self.step().is_some() {}
        self.now
    }

    /// Hybrid-NN **case 2** (paper §4.2.2–§4.2.3): the other channel's NN
    /// search finished first (at time `at`) with result `s`; re-target
    /// this search to find the nearest neighbor of `s` on the *remaining
    /// portion* of this channel's R-tree.
    ///
    /// The temporary result (if any) is re-evaluated under the new query
    /// point, and the smallest `MinDist` among the queued MBRs seeds the
    /// bound ("the smallest MinDist is used to update the upper bound"),
    /// with that MBR preserved.
    pub fn switch_query_point(&mut self, new_q: Point, at: u64) {
        self.mode = SearchMode::Point { q: new_q };
        self.rebase_after_switch(at);
    }

    /// Hybrid-NN **case 3** (paper §4.2.3, Algorithm 2): the other
    /// channel finished first (at time `at`) with result `r`; change this
    /// search's metric to the transitive distance through `p` and `r`,
    /// using `MinTransDist` for pruning and `MinMaxTransDist` for the
    /// guaranteed initial bound over the queued MBRs.
    pub fn switch_to_transitive(&mut self, p: Point, r: Point, at: u64) {
        self.mode = SearchMode::Transitive { p, r };
        self.rebase_after_switch(at);
    }

    /// Shared re-targeting logic: revive parked entries that are still in
    /// the future, re-evaluate the temporary result, seed the bound from
    /// the queued MBRs, re-purge under the new metric.
    fn rebase_after_switch(&mut self, at: u64) {
        // Delayed pruning, realized: entries condemned by the *old*
        // metric whose pages have not yet been broadcast are candidates
        // again; entries whose arrival already passed were definitively
        // decided under the old metric (pop-time semantics).
        let revivable = self.parked.extract_if(.., |e| e.arrival >= at);
        let mut revived: Vec<QueueEntry> = revivable.collect();
        self.queue.append(&mut revived);
        self.parked.clear();

        self.best_value = match self.best {
            Some((pt, _)) => self.mode.point_objective(pt),
            None => f64::INFINITY,
        };
        self.upper = self.best_value;
        self.source = None;
        // Initial bound update over the queue (paper §4.2.3): seed with
        // the guaranteed achievable bound of the queued MBRs — case 3's
        // text names MinMaxTransDist explicitly; we use the symmetric
        // MinMaxDist for case 2. (The case-2 paragraph literally says
        // "MinDist", but MinDist is a lower bound — seeding the bound
        // with it degenerates the remaining search into a blind greedy
        // descent whenever the switch fires near the root, which
        // contradicts the reported behaviour; the face-property bound is
        // the sound reading.)
        let mut anchor: Option<(NodeId, f64)> = None;
        for e in &self.queue {
            let safe = self.mode.safe_upper(&e.mbr);
            if anchor.is_none_or(|(_, b)| safe < b) {
                anchor = Some((e.node, safe));
            }
        }
        if let Some((node, bound)) = anchor {
            if bound < self.upper {
                self.upper = bound;
                self.source = Some(node);
            } else if self.best.is_none() {
                // Keep a live anchor even when the bound did not improve,
                // so the re-targeted search still reaches a real point.
                self.source = Some(node);
            }
        }
        self.purge();
    }

    /// Parks every queued entry that is provably (exact) or probably
    /// (ANN) useless under the current bound; the preserved anchor is
    /// exempt. Parked entries cost no pages and no time, and remain
    /// revivable by a later switch.
    fn purge(&mut self) {
        let mode = self.mode;
        let upper = self.upper;
        let ann = self.ann;
        let source = self.source;
        let tree = self.channel.tree();
        let height = tree.height();
        let condemned = self.queue.extract_if(.., |e| {
            if Some(e.node) == source {
                return false;
            }
            // Guaranteed pruning (eNN rule).
            if mode.lower_bound(&e.mbr) > upper {
                return true;
            }
            // Probabilistic pruning against the bound's search region
            // (Heuristics 1 & 2).
            if ann.is_approximate() {
                let ratio = mode.overlap_ratio(&e.mbr, upper);
                if ann.prunes(ratio, tree.depth_of(e.node), height) {
                    return true;
                }
            }
            false
        });
        self.parked.extend(condemned);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tnn_broadcast::BroadcastParams;
    use tnn_rtree::{PackingAlgorithm, RTree};

    fn channel(pts: &[Point], phase: u64) -> Channel {
        let params = BroadcastParams::new(64);
        let tree = RTree::build(pts, params.rtree_params(), PackingAlgorithm::Str).unwrap();
        Channel::new(Arc::new(tree), params, phase)
    }

    fn grid(n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| Point::new((i * 37 % 211) as f64, (i * 53 % 223) as f64))
            .collect()
    }

    #[test]
    fn exact_search_finds_true_nn() {
        let pts = grid(300);
        let ch = channel(&pts, 17);
        for q in [
            Point::new(0.0, 0.0),
            Point::new(105.0, 111.0),
            Point::new(-50.0, 300.0),
        ] {
            let mut task = NnSearchTask::new(&ch, SearchMode::Point { q }, AnnMode::Exact, 5);
            task.run_to_completion();
            let (_, _, got) = task.best().expect("search finds a point");
            let brute = pts.iter().map(|p| q.dist(*p)).fold(f64::INFINITY, f64::min);
            assert!((got - brute).abs() < 1e-9, "query {q:?}");
        }
    }

    #[test]
    fn exact_transitive_search_finds_true_min() {
        let pts = grid(250);
        let ch = channel(&pts, 3);
        let p = Point::new(10.0, 20.0);
        let r = Point::new(180.0, 150.0);
        let mut task =
            NnSearchTask::new(&ch, SearchMode::Transitive { p, r }, AnnMode::Exact, 0);
        task.run_to_completion();
        let (_, _, got) = task.best().unwrap();
        let brute = pts
            .iter()
            .map(|s| p.dist(*s) + s.dist(r))
            .fold(f64::INFINITY, f64::min);
        assert!((got - brute).abs() < 1e-9);
    }

    #[test]
    fn search_downloads_fewer_pages_than_full_index() {
        let pts = grid(500);
        let ch = channel(&pts, 0);
        let q = Point::new(100.0, 100.0);
        let mut task = NnSearchTask::new(&ch, SearchMode::Point { q }, AnnMode::Exact, 0);
        task.run_to_completion();
        assert!(task.tuner().pages < ch.tree().num_nodes() as u64 / 2);
    }

    #[test]
    fn search_completes_within_one_index_segment() {
        // Preorder layout: a search never waits for the next bucket.
        let pts = grid(400);
        let ch = channel(&pts, 29);
        let q = Point::new(55.0, 77.0);
        let start = 123;
        let mut task = NnSearchTask::new(&ch, SearchMode::Point { q }, AnnMode::Exact, start);
        let finish = task.run_to_completion();
        let root_arrival = ch.next_root_arrival(start);
        assert!(finish <= root_arrival + ch.layout().index_len() + 1);
    }

    #[test]
    fn ann_search_returns_a_real_point() {
        let pts = grid(400);
        let ch = channel(&pts, 7);
        let q = Point::new(100.0, 100.0);
        for factor in [0.25, 1.0, 4.0] {
            let mut task = NnSearchTask::new(
                &ch,
                SearchMode::Point { q },
                AnnMode::Dynamic { factor },
                0,
            );
            task.run_to_completion();
            let (pt, _, v) = task.best().expect("ANN must still find a point");
            assert!((q.dist(pt) - v).abs() < 1e-9);
        }
    }

    #[test]
    fn ann_never_downloads_more_than_exact() {
        let pts = grid(600);
        let ch = channel(&pts, 0);
        let q = Point::new(160.0, 40.0);
        let mut exact = NnSearchTask::new(&ch, SearchMode::Point { q }, AnnMode::Exact, 0);
        exact.run_to_completion();
        let mut ann = NnSearchTask::new(
            &ch,
            SearchMode::Point { q },
            AnnMode::Dynamic { factor: 1.0 },
            0,
        );
        ann.run_to_completion();
        assert!(ann.tuner().pages <= exact.tuner().pages);
        // And the approximate answer can only be farther.
        let (_, _, ve) = exact.best().unwrap();
        let (_, _, va) = ann.best().unwrap();
        assert!(va >= ve - 1e-9);
    }

    #[test]
    fn switch_query_point_mid_search() {
        let pts = grid(300);
        let ch = channel(&pts, 11);
        let p = Point::new(0.0, 0.0);
        let s = Point::new(150.0, 180.0);
        let mut task = NnSearchTask::new(&ch, SearchMode::Point { q: p }, AnnMode::Exact, 0);
        // Let it make some progress, then re-target.
        for _ in 0..3 {
            task.step();
        }
        let at = task.now();
        task.switch_query_point(s, at);
        task.run_to_completion();
        let (pt, _, v) = task.best().expect("re-targeted search finds a point");
        assert!((s.dist(pt) - v).abs() < 1e-9);
        // The result is feasible (a real dataset point), though possibly
        // only the NN of the *remaining* portion.
        assert!(pts.contains(&pt));
    }

    #[test]
    fn switch_to_transitive_mid_search() {
        let pts = grid(300);
        let ch = channel(&pts, 11);
        let p = Point::new(20.0, 30.0);
        let r = Point::new(190.0, 10.0);
        let mut task = NnSearchTask::new(&ch, SearchMode::Point { q: p }, AnnMode::Exact, 0);
        for _ in 0..2 {
            task.step();
        }
        let at = task.now();
        task.switch_to_transitive(p, r, at);
        task.run_to_completion();
        let (pt, _, v) = task.best().expect("transitive search finds a point");
        assert!((p.dist(pt) + pt.dist(r) - v).abs() < 1e-9);
        assert!(pts.contains(&pt));
    }

    #[test]
    fn switch_revives_parked_entries_still_in_future() {
        // Build a search whose first metric parks far-away nodes, then
        // re-target so that a parked node holds the new optimum: the
        // revived entry must be visited and the true new NN found, as
        // long as the switch happens at the task's own clock (all parked
        // arrivals are then still in the future — preorder guarantees
        // descendants of unvisited subtrees broadcast later).
        let mut pts = grid(200);
        // A lone far-away point that a p-centred search will park early.
        pts.push(Point::new(5_000.0, 5_000.0));
        let ch = channel(&pts, 0);
        let p = Point::new(0.0, 0.0);
        let mut task = NnSearchTask::new(&ch, SearchMode::Point { q: p }, AnnMode::Exact, 0);
        // Progress until the NN of p is essentially settled.
        for _ in 0..6 {
            task.step();
        }
        let at = task.now();
        // Re-target to the far corner: only the parked outlier is close.
        task.switch_query_point(Point::new(5_100.0, 5_100.0), at);
        task.run_to_completion();
        let (pt, _, _) = task.best().unwrap();
        assert_eq!(
            pt,
            Point::new(5_000.0, 5_000.0),
            "revival must reach the parked outlier"
        );
    }

    #[test]
    fn switch_immediately_after_start_is_safe() {
        let pts = grid(100);
        let ch = channel(&pts, 0);
        let p = Point::new(5.0, 5.0);
        let mut task = NnSearchTask::new(&ch, SearchMode::Point { q: p }, AnnMode::Exact, 0);
        // No steps yet — queue holds only the root.
        task.switch_to_transitive(p, Point::new(100.0, 100.0), 0);
        task.run_to_completion();
        assert!(task.best().is_some());
    }

    #[test]
    fn single_point_dataset() {
        let pts = vec![Point::new(42.0, 17.0)];
        let ch = channel(&pts, 0);
        let q = Point::new(0.0, 0.0);
        let mut task = NnSearchTask::new(&ch, SearchMode::Point { q }, AnnMode::Exact, 0);
        task.run_to_completion();
        let (pt, _, v) = task.best().unwrap();
        assert_eq!(pt, Point::new(42.0, 17.0));
        assert!((v - q.dist(pt)).abs() < 1e-12);
        assert_eq!(task.tuner().pages, 1); // the root is the only node
    }

    #[test]
    fn arrivals_are_nondecreasing() {
        let pts = grid(500);
        let ch = channel(&pts, 31);
        let q = Point::new(33.0, 44.0);
        let mut task = NnSearchTask::new(&ch, SearchMode::Point { q }, AnnMode::Exact, 9);
        let mut last = 0;
        while let Some(a) = task.step() {
            assert!(a >= last, "arrival order violated");
            last = a;
        }
    }

    #[test]
    fn fixed_alpha_mode_works() {
        let pts = grid(400);
        let ch = channel(&pts, 0);
        let q = Point::new(100.0, 100.0);
        let mut task = NnSearchTask::new(
            &ch,
            SearchMode::Point { q },
            AnnMode::Fixed { alpha: 0.5 },
            0,
        );
        task.run_to_completion();
        assert!(task.best().is_some());
    }

    #[test]
    fn queue_stays_within_paper_memory_bound() {
        // §4.2.4: worst-case queue size (H − 1) × (M − 1) … with delayed
        // pruning the *downloadable* queue stays small; check a generous
        // multiple to catch pathological growth.
        let pts = grid(1000);
        let ch = channel(&pts, 0);
        let q = Point::new(120.0, 120.0);
        let mut task = NnSearchTask::new(&ch, SearchMode::Point { q }, AnnMode::Exact, 0);
        let h = ch.tree().height() as usize;
        let m = ch.tree().params().fanout;
        let mut peak = 0;
        while task.step().is_some() {
            peak = peak.max(task.queue_len());
        }
        assert!(
            peak <= 2 * (h - 1) * (m - 1) + m + 1,
            "peak queue {peak} vs paper bound {}",
            (h - 1) * (m - 1)
        );
    }
}
