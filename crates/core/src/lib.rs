//! # tnn-core
//!
//! Transitive nearest-neighbor (TNN) query processing over multi-channel
//! wireless broadcast — the primary contribution of *Zhang, Lee, Mitra,
//! Zheng: Processing Transitive Nearest-Neighbor Queries in Multi-Channel
//! Access Environments* (EDBT 2008).
//!
//! Given a query point `p` and two datasets `S`, `R` broadcast on two
//! channels, a TNN query returns the pair `(s, r) ∈ S × R` minimizing the
//! transitive distance `dis(p, s) + dis(s, r)`. This crate generalizes
//! the whole pipeline to `k ≥ 2` channels: the same four algorithms find
//! the minimum-length route `p → s₁ → … → s_k` with one stop per
//! channel, and `k = 2` reproduces the paper bit-for-bit.
//!
//! ## Algorithms ([`Algorithm`])
//!
//! All follow the estimate–filter paradigm (§3.1): estimate a search
//! radius `d` from a *feasible* pair so that `circle(p, d)` provably
//! contains the answer (Theorem 1), then filter with window queries on
//! both channels and a local join.
//!
//! * [`Algorithm::WindowBased`] — the single-channel baseline \[19\],
//!   adapted: NN of `p` in `S`, then NN of `s` in `R` (sequential),
//!   parallel filter.
//! * [`Algorithm::ApproximateTnn`] — baseline \[19\]: radius from the
//!   uniform-density estimate (eq. 1); no index search in the estimate
//!   phase, but the answer is **not guaranteed** (fails on skewed data,
//!   Table 3).
//! * [`Algorithm::DoubleNn`] — new (§4.1): both NN searches run from `p`
//!   **in parallel**; `d = dis(p, s) + dis(s, r)`.
//! * [`Algorithm::HybridNn`] — new (§4.2): starts like Double-NN; when
//!   one channel finishes first the other search is *re-targeted* —
//!   either the query point switches to `s` (case 2) or the metric
//!   switches to the transitive bounds `MinTransDist` /
//!   `MinMaxTransDist` (case 3) — to shrink the search range.
//!
//! ## ANN optimization (§5, [`AnnMode`])
//!
//! The estimate-phase searches can trade exactness for energy with
//! probabilistic pruning: a node is pruned when the overlap between its
//! MBR and the current search region (circle, or transitive-distance
//! ellipse) is at most an `α` fraction of the MBR area, with `α` scaled
//! dynamically by node depth (eq. 4). The final TNN answer is *never*
//! affected — only the filter radius grows (Theorem 1).
//!
//! ## Extensions (the paper's future-work list, §7)
//!
//! * [`Query::chain`] — item 1: `k ≥ 2` datasets on `k` channels,
//!   visited in category order (an alias for the generalized
//!   [`Algorithm::DoubleNn`] pipeline);
//! * [`Query::order_free`] — item 2: the visiting order is not specified
//!   (the shortest route over every visit order);
//! * [`Query::round_trip`] — item 3: a complete tour returning to the
//!   source (`dis(p,s₁) + Σ dis(sᵢ,sᵢ₊₁) + dis(s_k,p)`).
//!
//! ## The unified API ([`QueryEngine`])
//!
//! All query kinds run through one engine: build a [`QueryEngine`] over a
//! cheaply shareable [`tnn_broadcast::MultiChannelEnv`], describe the
//! request with the builder-style [`Query`] type (`Query::tnn(p)
//! .algorithm(..).ann_modes(..).phases(..)`), and get a unified
//! [`QueryOutcome`] with per-hop channel costs back. The pre-engine free
//! functions (`run_query`, `chain_tnn`, `order_free_tnn`,
//! `round_trip_tnn`) were deprecated in 0.2.0 and are gone; see
//! `docs/API.md` at the repository root for the migration guide.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod ann;
mod config;
mod engine;
mod error;
mod exact;
mod join;
mod key;
mod merge;
mod mode;
mod result;

pub mod algorithms;
pub mod task;

pub use ann::{dynamic_alpha, AnnMode};
pub use config::{Algorithm, AnnModes, AnnSpec, TnnConfig};
pub use engine::{Query, QueryEngine, QueryKind, QueryOutcome, RouteStop};
pub use error::TnnError;
pub use exact::{exact_chain_tnn, exact_tnn};
pub use join::{chain_join, chain_loop_join, tnn_join};
pub use key::QueryKey;
pub use merge::{merge_route_layers, MergedRoute, RouteObjective};
pub use mode::SearchMode;
pub use result::{ChannelCost, Phase, TnnPair, TnnRun};

pub use algorithms::{
    approximate_radius, approximate_radius_for_env, order_free_tnn_overlay, round_trip_join,
    round_trip_tnn_overlay, run_query_impl, run_query_overlay, QueryScratch, VariantRun,
    VisitOrder,
};
pub use join::{chain_join_with, chain_loop_join_with, tnn_join_with, JoinScratch};
pub use task::{ArrivalHeap, CandidateQueue};

#[cfg(feature = "linear-reference")]
pub use algorithms::{run_query_linear, run_query_linear_with};
#[cfg(feature = "linear-reference")]
pub use task::LinearQueue;
