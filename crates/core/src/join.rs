//! The filter-phase local join: find the minimum-transitive-distance pair
//! among the retrieved candidates.
//!
//! The paper's Algorithm 1 (lines 7–17) is a bound-pruned nested loop; we
//! keep that shape but run every comparison in squared-distance space and
//! accelerate the inner NN lookup with an x-sorted plane sweep when the
//! candidate sets are large (the join runs on the client from
//! already-downloaded data, and the paper explicitly neglects its
//! computational cost — this only keeps simulations fast). All working
//! memory lives in a reusable [`JoinScratch`], so a batch of queries
//! performs no join allocations after the first.

use crate::TnnPair;
use tnn_geom::Point;
use tnn_rtree::ObjectId;

/// Candidate-set size beyond which the inner loop switches from a linear
/// scan to the x-sorted sweep (sorting only pays off once the scan is
/// long enough).
const SWEEP_JOIN_THRESHOLD: usize = 48;

/// Reusable buffers for [`tnn_join_with`] and the k-layer
/// [`chain_join_with`]: the `s`-candidate visit order, the x-sorted
/// inner-layer index, and the chain DP's per-layer cost/backpointer
/// tables. One scratch serves both the two-channel join and every hop of
/// a `k`-layer join, so a batch of queries performs no join allocations
/// after the buffers have grown to the workload's candidate counts.
#[derive(Debug, Default)]
pub struct JoinScratch {
    /// `(dis²(p, s), index)` sorted ascending.
    s_order: Vec<(f64, u32)>,
    /// `(x, y, index)` sorted by x (then index).
    r_by_x: Vec<(f64, f64, u32)>,
    /// The downstream layer of the current chain-DP transition, sorted by
    /// x (then index).
    layer_by_x: Vec<(Point, u32)>,
    /// Chain DP: suffix cost per layer item, one table per layer.
    chain_cost: Vec<Vec<f64>>,
    /// Chain DP: best-successor backpointers, one table per layer.
    chain_next: Vec<Vec<u32>>,
}

/// Finds the pair `(s, r)` minimizing `dis(p, s) + dis(s, r)` over the
/// candidate sets, or `None` when either set is empty.
///
/// Ties are broken toward smaller squared distance, then smaller
/// candidate index — deterministic for deterministic inputs and
/// independent of the inner-loop strategy.
pub fn tnn_join(
    p: Point,
    s_cands: &[(Point, ObjectId)],
    r_cands: &[(Point, ObjectId)],
) -> Option<TnnPair> {
    tnn_join_with(&mut JoinScratch::default(), p, s_cands, r_cands)
}

/// [`tnn_join`] with caller-provided scratch buffers (zero allocations
/// once the buffers have grown to the workload's candidate counts).
pub fn tnn_join_with(
    scratch: &mut JoinScratch,
    p: Point,
    s_cands: &[(Point, ObjectId)],
    r_cands: &[(Point, ObjectId)],
) -> Option<TnnPair> {
    if s_cands.is_empty() || r_cands.is_empty() {
        return None;
    }

    // Visit s candidates in ascending dis(p, s): once dis(p, s) alone
    // reaches the best total, no later s can win (Algorithm 1 line 8).
    // Squared distances order identically; the index tie-break keeps the
    // unstable sort deterministic.
    scratch.s_order.clear();
    scratch.s_order.extend(
        s_cands
            .iter()
            .enumerate()
            .map(|(i, &(pt, _))| (p.dist_sq(pt), i as u32)),
    );
    scratch
        .s_order
        .sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));

    let sweep = r_cands.len() > SWEEP_JOIN_THRESHOLD;
    if sweep {
        scratch.r_by_x.clear();
        scratch.r_by_x.extend(
            r_cands
                .iter()
                .enumerate()
                .map(|(i, &(pt, _))| (pt.x, pt.y, i as u32)),
        );
        scratch
            .r_by_x
            .sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.2.cmp(&b.2)));
    }

    let mut best: Option<TnnPair> = None;
    for &(_, si) in &scratch.s_order {
        let (s_pt, s_id) = s_cands[si as usize];
        let d_ps = p.dist(s_pt);
        if let Some(b) = &best {
            if d_ps >= b.dist {
                break;
            }
        }
        let (ri, d_sr_sq) = if sweep {
            nearest_by_sweep(&scratch.r_by_x, s_pt)
        } else {
            nearest_by_scan(r_cands, s_pt)
        };
        let (r_pt, r_id) = r_cands[ri];
        let total = d_ps + d_sr_sq.sqrt();
        if best.as_ref().is_none_or(|b| total < b.dist) {
            best = Some(TnnPair {
                s: (s_pt, s_id),
                r: (r_pt, r_id),
                dist: total,
            });
        }
    }
    best
}

/// Linear inner NN in squared space; returns `(index, dis²)`. Picks the
/// smallest `(dis², index)` pair, matching [`nearest_by_sweep`] exactly.
fn nearest_by_scan(r_cands: &[(Point, ObjectId)], q: Point) -> (usize, f64) {
    let mut best = (usize::MAX, f64::INFINITY);
    for (i, &(pt, _)) in r_cands.iter().enumerate() {
        let d2 = q.dist_sq(pt);
        if d2 < best.1 {
            best = (i, d2);
        }
    }
    best
}

/// Inner NN over the x-sorted candidate index: expands outward from the
/// query's x position and stops each direction once the x gap alone
/// exceeds the best squared distance. Returns `(index, dis²)`, choosing
/// the smallest `(dis², index)` pair so the result is independent of the
/// sweep direction.
fn nearest_by_sweep(r_by_x: &[(f64, f64, u32)], q: Point) -> (usize, f64) {
    let start = r_by_x.partition_point(|e| e.0 < q.x);
    let mut best_d2 = f64::INFINITY;
    let mut best_idx = u32::MAX;
    for e in &r_by_x[start..] {
        let dx = e.0 - q.x;
        if dx * dx > best_d2 {
            break;
        }
        let dy = e.1 - q.y;
        let d2 = dx * dx + dy * dy;
        if d2 < best_d2 || (d2 == best_d2 && e.2 < best_idx) {
            best_d2 = d2;
            best_idx = e.2;
        }
    }
    for e in r_by_x[..start].iter().rev() {
        let dx = e.0 - q.x;
        if dx * dx > best_d2 {
            break;
        }
        let dy = e.1 - q.y;
        let d2 = dx * dx + dy * dy;
        if d2 < best_d2 || (d2 == best_d2 && e.2 < best_idx) {
            best_d2 = d2;
            best_idx = e.2;
        }
    }
    (best_idx as usize, best_d2)
}

/// Chained-TNN join (the future-work generalization): given candidate
/// layers `C₁ … C_k`, finds the chain `p → s₁ → … → s_k` with `sᵢ ∈ Cᵢ`
/// of minimum total length, by dynamic programming backwards over the
/// layers. Returns `None` when any layer is empty.
///
/// Layers are anything slice-like (`Vec`s or borrowed `&[_]` hit lists),
/// so the broadcast pipeline can join straight out of reused window-task
/// buffers without copying them into owned vectors first.
pub fn chain_join<L: AsRef<[(Point, ObjectId)]>>(
    p: Point,
    layers: &[L],
) -> Option<(Vec<(Point, ObjectId)>, f64)> {
    chain_join_with(&mut JoinScratch::default(), p, layers)
}

/// [`chain_join`] with caller-provided scratch buffers — the k-layer
/// sibling of [`tnn_join_with`], reusing the same [`JoinScratch`].
///
/// Each layer transition is the x-sorted sweep of the two-channel join,
/// iterated pairwise down the layers: large downstream layers are sorted
/// by x once per transition and each upstream point expands outward from
/// its x position, stopping a direction when the x gap plus the smallest
/// downstream suffix cost already reaches its best total (`dis ≥ |Δx|`
/// and `cost ≥ min cost` bound the objective from below).
pub fn chain_join_with<L: AsRef<[(Point, ObjectId)]>>(
    scratch: &mut JoinScratch,
    p: Point,
    layers: &[L],
) -> Option<(Vec<(Point, ObjectId)>, f64)> {
    chain_join_core(scratch, p, layers, false)
}

/// The closed-tour k-layer join: minimizes
/// `dis(p, s₁) + Σ dis(sᵢ, sᵢ₊₁) + dis(s_k, p)` — the round-trip TNN
/// objective over `k ≥ 2` layers. Returns `None` when any layer is empty.
pub fn chain_loop_join<L: AsRef<[(Point, ObjectId)]>>(
    p: Point,
    layers: &[L],
) -> Option<(Vec<(Point, ObjectId)>, f64)> {
    chain_loop_join_with(&mut JoinScratch::default(), p, layers)
}

/// [`chain_loop_join`] with caller-provided scratch buffers.
pub fn chain_loop_join_with<L: AsRef<[(Point, ObjectId)]>>(
    scratch: &mut JoinScratch,
    p: Point,
    layers: &[L],
) -> Option<(Vec<(Point, ObjectId)>, f64)> {
    chain_join_core(scratch, p, layers, true)
}

/// Shared implementation of the open-chain and closed-tour k-layer joins.
/// `close_tour` seeds the last layer's suffix costs with the return leg
/// `dis(s_k, p)` instead of zero.
///
/// Ties are broken toward the smaller `(total, index)` pair in every
/// transition and in the head step, matching the plain nested-loop order
/// — deterministic and independent of whether a transition took the scan
/// or the sweep path.
fn chain_join_core<L: AsRef<[(Point, ObjectId)]>>(
    scratch: &mut JoinScratch,
    p: Point,
    layers: &[L],
    close_tour: bool,
) -> Option<(Vec<(Point, ObjectId)>, f64)> {
    if layers.is_empty() || layers.iter().any(|l| l.as_ref().is_empty()) {
        return None;
    }
    let k = layers.len();
    // Grow the per-layer DP tables to k layers, reusing inner capacity.
    while scratch.chain_cost.len() < k {
        scratch.chain_cost.push(Vec::new());
        scratch.chain_next.push(Vec::new());
    }
    for (i, layer) in layers.iter().enumerate() {
        let n = layer.as_ref().len();
        let cost = &mut scratch.chain_cost[i];
        cost.clear();
        if i == k - 1 {
            if close_tour {
                cost.extend(layer.as_ref().iter().map(|&(pt, _)| pt.dist(p)));
            } else {
                cost.extend(std::iter::repeat_n(0.0, n));
            }
        } else {
            cost.extend(std::iter::repeat_n(f64::INFINITY, n));
        }
        let next = &mut scratch.chain_next[i];
        next.clear();
        next.extend(std::iter::repeat_n(0u32, n));
    }

    // Backward DP: cost[i][j] = best suffix length starting at layer i's
    // item j. Each transition is a (weighted) nearest-neighbor problem
    // over the downstream layer; large layers take the x-sorted sweep.
    for i in (0..k - 1).rev() {
        let downstream = layers[i + 1].as_ref();
        let (cost_i, cost_next) = {
            let (head, tail) = scratch.chain_cost.split_at_mut(i + 1);
            (&mut head[i], &tail[0][..downstream.len()])
        };
        let next_i = &mut scratch.chain_next[i];
        let sweep = downstream.len() > SWEEP_JOIN_THRESHOLD;
        let min_future = cost_next.iter().copied().fold(f64::INFINITY, f64::min);
        if sweep {
            scratch.layer_by_x.clear();
            scratch.layer_by_x.extend(
                downstream
                    .iter()
                    .enumerate()
                    .map(|(j, &(pt, _))| (pt, j as u32)),
            );
            scratch
                .layer_by_x
                .sort_unstable_by(|a, b| a.0.x.total_cmp(&b.0.x).then(a.1.cmp(&b.1)));
        }
        for (j, &(pt, _)) in layers[i].as_ref().iter().enumerate() {
            let (best, arg) = if sweep {
                weighted_nearest_by_sweep(&scratch.layer_by_x, cost_next, min_future, pt)
            } else {
                weighted_nearest_by_scan(downstream, cost_next, pt)
            };
            cost_i[j] = best;
            next_i[j] = arg;
        }
    }

    // Head step from p into layer 0.
    let (mut j, mut total) = (0usize, f64::INFINITY);
    for (j0, &(pt, _)) in layers[0].as_ref().iter().enumerate() {
        let c = p.dist(pt) + scratch.chain_cost[0][j0];
        if c < total {
            total = c;
            j = j0;
        }
    }
    let mut path = Vec::with_capacity(k);
    for (i, layer) in layers.iter().enumerate() {
        path.push(layer.as_ref()[j]);
        if i + 1 < k {
            j = scratch.chain_next[i][j] as usize;
        }
    }
    Some((path, total))
}

/// Linear inner loop of one chain-DP transition: minimizes
/// `dis(q, cand) + cost[cand]` over the downstream layer, preferring the
/// smaller `(total, index)` pair on ties.
fn weighted_nearest_by_scan(cands: &[(Point, ObjectId)], cost: &[f64], q: Point) -> (f64, u32) {
    let mut best = (f64::INFINITY, u32::MAX);
    for (j, &(pt, _)) in cands.iter().enumerate() {
        let total = q.dist(pt) + cost[j];
        if total < best.0 {
            best = (total, j as u32);
        }
    }
    best
}

/// Sweep inner loop of one chain-DP transition over the x-sorted
/// downstream layer: expands outward from the query's x position and
/// stops a direction once `|Δx| + min_cost` alone reaches the best total
/// (`dis(q, cand) ≥ |Δx|` and `cost[cand] ≥ min_cost`). Picks the
/// smallest `(total, index)` pair, matching [`weighted_nearest_by_scan`]
/// exactly, so the result is independent of the sweep direction.
fn weighted_nearest_by_sweep(
    by_x: &[(Point, u32)],
    cost: &[f64],
    min_cost: f64,
    q: Point,
) -> (f64, u32) {
    let start = by_x.partition_point(|e| e.0.x < q.x);
    let mut best = (f64::INFINITY, u32::MAX);
    for &(pt, j) in &by_x[start..] {
        let dx = pt.x - q.x;
        if dx + min_cost > best.0 {
            break;
        }
        let total = q.dist(pt) + cost[j as usize];
        if total < best.0 || (total == best.0 && j < best.1) {
            best = (total, j);
        }
    }
    for &(pt, j) in by_x[..start].iter().rev() {
        let dx = q.x - pt.x;
        if dx + min_cost > best.0 {
            break;
        }
        let total = q.dist(pt) + cost[j as usize];
        if total < best.0 || (total == best.0 && j < best.1) {
            best = (total, j);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use tnn_geom::transitive_dist;

    fn pts(coords: &[(f64, f64)]) -> Vec<(Point, ObjectId)> {
        coords
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| (Point::new(x, y), ObjectId(i as u32)))
            .collect()
    }

    #[test]
    fn join_matches_brute_force_small() {
        let p = Point::new(0.0, 0.0);
        let s = pts(&[(1.0, 0.0), (5.0, 5.0), (2.0, 2.0)]);
        let r = pts(&[(1.0, 1.0), (10.0, 0.0), (3.0, 2.0)]);
        let got = tnn_join(p, &s, &r).unwrap();
        let mut best = f64::INFINITY;
        for &(sp, _) in &s {
            for &(rp, _) in &r {
                best = best.min(transitive_dist(p, sp, rp));
            }
        }
        assert!((got.dist - best).abs() < 1e-12);
    }

    #[test]
    fn join_matches_brute_force_large_indexed_path() {
        // More than INDEXED_JOIN_THRESHOLD r-candidates exercises the
        // R-tree-accelerated inner loop.
        let p = Point::new(50.0, 50.0);
        let s: Vec<(Point, ObjectId)> = (0..80)
            .map(|i| {
                (
                    Point::new((i * 13 % 97) as f64, (i * 7 % 89) as f64),
                    ObjectId(i),
                )
            })
            .collect();
        let r: Vec<(Point, ObjectId)> = (0..120)
            .map(|i| {
                (
                    Point::new((i * 11 % 101) as f64, (i * 17 % 103) as f64),
                    ObjectId(i),
                )
            })
            .collect();
        let got = tnn_join(p, &s, &r).unwrap();
        let mut best = f64::INFINITY;
        for &(sp, _) in &s {
            for &(rp, _) in &r {
                best = best.min(transitive_dist(p, sp, rp));
            }
        }
        assert!((got.dist - best).abs() < 1e-9);
    }

    #[test]
    fn sweep_and_scan_inner_loops_agree() {
        // The x-sorted sweep must pick exactly the same (dis², index) as
        // the plain scan, including duplicate-coordinate tie cases.
        let mut r: Vec<(Point, ObjectId)> = (0..200)
            .map(|i| {
                (
                    Point::new((i * 29 % 97) as f64, (i * 31 % 89) as f64),
                    ObjectId(i),
                )
            })
            .collect();
        // Force coordinate duplicates.
        r.push(r[17]);
        r.push(r[3]);
        let mut by_x: Vec<(f64, f64, u32)> = r
            .iter()
            .enumerate()
            .map(|(i, &(pt, _))| (pt.x, pt.y, i as u32))
            .collect();
        by_x.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.2.cmp(&b.2)));
        for qi in 0..150 {
            let q = Point::new((qi * 13 % 120) as f64 - 10.0, (qi * 7 % 110) as f64 - 5.0);
            let scan = nearest_by_scan(&r, q);
            let sweep = nearest_by_sweep(&by_x, q);
            assert_eq!(scan, sweep, "query {q:?}");
        }
    }

    #[test]
    fn join_with_reused_scratch_matches_fresh() {
        let p = Point::new(40.0, 40.0);
        let mut scratch = JoinScratch::default();
        for salt in 0..5usize {
            let s: Vec<(Point, ObjectId)> = (0..60)
                .map(|i| {
                    (
                        Point::new(((i + salt) * 13 % 97) as f64, ((i + salt) * 7 % 89) as f64),
                        ObjectId(i as u32),
                    )
                })
                .collect();
            let r: Vec<(Point, ObjectId)> = (0..90)
                .map(|i| {
                    (
                        Point::new(
                            ((i + salt) * 11 % 101) as f64,
                            ((i + salt) * 17 % 103) as f64,
                        ),
                        ObjectId(i as u32),
                    )
                })
                .collect();
            let fresh = tnn_join(p, &s, &r).unwrap();
            let reused = tnn_join_with(&mut scratch, p, &s, &r).unwrap();
            assert_eq!(fresh.s, reused.s);
            assert_eq!(fresh.r, reused.r);
            assert_eq!(fresh.dist, reused.dist);
        }
    }

    #[test]
    fn join_empty_side_is_none() {
        let p = Point::ORIGIN;
        let s = pts(&[(1.0, 1.0)]);
        assert!(tnn_join(p, &s, &[]).is_none());
        assert!(tnn_join(p, &[], &s).is_none());
    }

    #[test]
    fn join_single_pair() {
        let p = Point::ORIGIN;
        let s = pts(&[(3.0, 4.0)]);
        let r = pts(&[(3.0, 8.0)]);
        let got = tnn_join(p, &s, &r).unwrap();
        assert!((got.dist - 9.0).abs() < 1e-12);
        assert_eq!(got.s.1, ObjectId(0));
    }

    #[test]
    fn chain_join_two_layers_equals_tnn_join() {
        let p = Point::new(1.0, 1.0);
        let s = pts(&[(2.0, 1.0), (0.0, 5.0), (4.0, 4.0)]);
        let r = pts(&[(2.0, 3.0), (9.0, 9.0)]);
        let (path, total) = chain_join(p, &[s.clone(), r.clone()]).unwrap();
        let pair = tnn_join(p, &s, &r).unwrap();
        assert!((total - pair.dist).abs() < 1e-12);
        assert_eq!(path.len(), 2);
        assert_eq!(path[0].0, pair.s.0);
        assert_eq!(path[1].0, pair.r.0);
    }

    #[test]
    fn chain_join_three_layers_brute_force() {
        let p = Point::ORIGIN;
        let a = pts(&[(1.0, 0.0), (0.0, 2.0)]);
        let b = pts(&[(2.0, 1.0), (3.0, 3.0), (1.0, 2.0)]);
        let c = pts(&[(4.0, 0.0), (2.0, 4.0)]);
        let (_, total) = chain_join(p, &[a.clone(), b.clone(), c.clone()]).unwrap();
        let mut best = f64::INFINITY;
        for &(ap, _) in &a {
            for &(bp, _) in &b {
                for &(cp, _) in &c {
                    best = best.min(p.dist(ap) + ap.dist(bp) + bp.dist(cp));
                }
            }
        }
        assert!((total - best).abs() < 1e-12);
    }

    #[test]
    fn chain_join_empty_layer_is_none() {
        let p = Point::ORIGIN;
        let a = pts(&[(1.0, 0.0)]);
        assert!(chain_join(p, &[a, vec![]]).is_none());
        assert!(chain_join::<Vec<(Point, ObjectId)>>(p, &[]).is_none());
    }
}
