//! The filter-phase local join: find the minimum-transitive-distance pair
//! among the retrieved candidates.
//!
//! The paper's Algorithm 1 (lines 7–17) is a bound-pruned nested loop; we
//! keep that shape but accelerate the inner NN lookup with a small
//! in-memory R-tree when the candidate sets are large (the join runs on
//! the client from already-downloaded data, and the paper explicitly
//! neglects its computational cost — this only keeps simulations fast).

use crate::TnnPair;
use tnn_geom::Point;
use tnn_rtree::{ObjectId, PackingAlgorithm, RTree, RTreeParams};

/// Candidate-set size beyond which the inner loop switches from a linear
/// scan to an in-memory R-tree NN lookup.
const INDEXED_JOIN_THRESHOLD: usize = 48;

/// Finds the pair `(s, r)` minimizing `dis(p, s) + dis(s, r)` over the
/// candidate sets, or `None` when either set is empty.
///
/// Ties are broken toward the pair encountered first with `s` ordered by
/// ascending `dis(p, s)` — deterministic for deterministic inputs.
pub fn tnn_join(
    p: Point,
    s_cands: &[(Point, ObjectId)],
    r_cands: &[(Point, ObjectId)],
) -> Option<TnnPair> {
    if s_cands.is_empty() || r_cands.is_empty() {
        return None;
    }

    // Visit s candidates in ascending dis(p, s): once dis(p, s) alone
    // reaches the best total, no later s can win (Algorithm 1 line 8).
    let mut order: Vec<usize> = (0..s_cands.len()).collect();
    order.sort_by(|&a, &b| {
        p.dist_sq(s_cands[a].0)
            .total_cmp(&p.dist_sq(s_cands[b].0))
    });

    let r_index = if r_cands.len() > INDEXED_JOIN_THRESHOLD {
        RTree::build_with_ids(r_cands, RTreeParams::new(8, 32), PackingAlgorithm::Str).ok()
    } else {
        None
    };

    let mut best: Option<TnnPair> = None;
    for &si in &order {
        let (s_pt, s_id) = s_cands[si];
        let d_ps = p.dist(s_pt);
        if let Some(b) = &best {
            if d_ps >= b.dist {
                break;
            }
        }
        let (r_pt, r_id, d_sr) = match &r_index {
            Some(index) => {
                let nn = index
                    .nearest_neighbor(s_pt)
                    .expect("non-empty candidate index");
                (nn.point, nn.object, nn.dist)
            }
            None => {
                let mut nearest = (r_cands[0].0, r_cands[0].1, f64::INFINITY);
                for &(r_pt, r_id) in r_cands {
                    let d = s_pt.dist(r_pt);
                    if d < nearest.2 {
                        nearest = (r_pt, r_id, d);
                    }
                }
                nearest
            }
        };
        let total = d_ps + d_sr;
        if best.as_ref().is_none_or(|b| total < b.dist) {
            best = Some(TnnPair {
                s: (s_pt, s_id),
                r: (r_pt, r_id),
                dist: total,
            });
        }
    }
    best
}

/// Chained-TNN join (the future-work generalization): given candidate
/// layers `C₁ … C_k`, finds the chain `p → s₁ → … → s_k` with `sᵢ ∈ Cᵢ`
/// of minimum total length, by dynamic programming backwards over the
/// layers. Returns `None` when any layer is empty.
pub fn chain_join(
    p: Point,
    layers: &[Vec<(Point, ObjectId)>],
) -> Option<(Vec<(Point, ObjectId)>, f64)> {
    if layers.is_empty() || layers.iter().any(|l| l.is_empty()) {
        return None;
    }
    let k = layers.len();
    // cost[i][j]: best length of the suffix starting at layer i's item j.
    let mut cost: Vec<Vec<f64>> = layers.iter().map(|l| vec![0.0; l.len()]).collect();
    let mut next: Vec<Vec<usize>> = layers.iter().map(|l| vec![0; l.len()]).collect();
    for i in (0..k - 1).rev() {
        for (j, &(pt, _)) in layers[i].iter().enumerate() {
            let mut best = f64::INFINITY;
            let mut arg = 0;
            for (j2, &(pt2, _)) in layers[i + 1].iter().enumerate() {
                let c = pt.dist(pt2) + cost[i + 1][j2];
                if c < best {
                    best = c;
                    arg = j2;
                }
            }
            cost[i][j] = best;
            next[i][j] = arg;
        }
    }
    // Head step from p into layer 0.
    let (mut j, mut total) = (0usize, f64::INFINITY);
    for (j0, &(pt, _)) in layers[0].iter().enumerate() {
        let c = p.dist(pt) + cost[0][j0];
        if c < total {
            total = c;
            j = j0;
        }
    }
    let mut path = Vec::with_capacity(k);
    for i in 0..k {
        path.push(layers[i][j]);
        if i + 1 < k {
            j = next[i][j];
        }
    }
    Some((path, total))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tnn_geom::transitive_dist;

    fn pts(coords: &[(f64, f64)]) -> Vec<(Point, ObjectId)> {
        coords
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| (Point::new(x, y), ObjectId(i as u32)))
            .collect()
    }

    #[test]
    fn join_matches_brute_force_small() {
        let p = Point::new(0.0, 0.0);
        let s = pts(&[(1.0, 0.0), (5.0, 5.0), (2.0, 2.0)]);
        let r = pts(&[(1.0, 1.0), (10.0, 0.0), (3.0, 2.0)]);
        let got = tnn_join(p, &s, &r).unwrap();
        let mut best = f64::INFINITY;
        for &(sp, _) in &s {
            for &(rp, _) in &r {
                best = best.min(transitive_dist(p, sp, rp));
            }
        }
        assert!((got.dist - best).abs() < 1e-12);
    }

    #[test]
    fn join_matches_brute_force_large_indexed_path() {
        // More than INDEXED_JOIN_THRESHOLD r-candidates exercises the
        // R-tree-accelerated inner loop.
        let p = Point::new(50.0, 50.0);
        let s: Vec<(Point, ObjectId)> = (0..80)
            .map(|i| (Point::new((i * 13 % 97) as f64, (i * 7 % 89) as f64), ObjectId(i)))
            .collect();
        let r: Vec<(Point, ObjectId)> = (0..120)
            .map(|i| (Point::new((i * 11 % 101) as f64, (i * 17 % 103) as f64), ObjectId(i)))
            .collect();
        let got = tnn_join(p, &s, &r).unwrap();
        let mut best = f64::INFINITY;
        for &(sp, _) in &s {
            for &(rp, _) in &r {
                best = best.min(transitive_dist(p, sp, rp));
            }
        }
        assert!((got.dist - best).abs() < 1e-9);
    }

    #[test]
    fn join_empty_side_is_none() {
        let p = Point::ORIGIN;
        let s = pts(&[(1.0, 1.0)]);
        assert!(tnn_join(p, &s, &[]).is_none());
        assert!(tnn_join(p, &[], &s).is_none());
    }

    #[test]
    fn join_single_pair() {
        let p = Point::ORIGIN;
        let s = pts(&[(3.0, 4.0)]);
        let r = pts(&[(3.0, 8.0)]);
        let got = tnn_join(p, &s, &r).unwrap();
        assert!((got.dist - 9.0).abs() < 1e-12);
        assert_eq!(got.s.1, ObjectId(0));
    }

    #[test]
    fn chain_join_two_layers_equals_tnn_join() {
        let p = Point::new(1.0, 1.0);
        let s = pts(&[(2.0, 1.0), (0.0, 5.0), (4.0, 4.0)]);
        let r = pts(&[(2.0, 3.0), (9.0, 9.0)]);
        let (path, total) = chain_join(p, &[s.clone(), r.clone()]).unwrap();
        let pair = tnn_join(p, &s, &r).unwrap();
        assert!((total - pair.dist).abs() < 1e-12);
        assert_eq!(path.len(), 2);
        assert_eq!(path[0].0, pair.s.0);
        assert_eq!(path[1].0, pair.r.0);
    }

    #[test]
    fn chain_join_three_layers_brute_force() {
        let p = Point::ORIGIN;
        let a = pts(&[(1.0, 0.0), (0.0, 2.0)]);
        let b = pts(&[(2.0, 1.0), (3.0, 3.0), (1.0, 2.0)]);
        let c = pts(&[(4.0, 0.0), (2.0, 4.0)]);
        let (_, total) = chain_join(p, &[a.clone(), b.clone(), c.clone()]).unwrap();
        let mut best = f64::INFINITY;
        for &(ap, _) in &a {
            for &(bp, _) in &b {
                for &(cp, _) in &c {
                    best = best.min(p.dist(ap) + ap.dist(bp) + bp.dist(cp));
                }
            }
        }
        assert!((total - best).abs() < 1e-12);
    }

    #[test]
    fn chain_join_empty_layer_is_none() {
        let p = Point::ORIGIN;
        let a = pts(&[(1.0, 0.0)]);
        assert!(chain_join(p, &[a, vec![]]).is_none());
        assert!(chain_join(p, &[]).is_none());
    }
}
