//! Result-cache key derivation: [`QueryKey`], the hashable identity of a
//! [`Query`] against a `k`-channel environment.
//!
//! The engine is deterministic: two queries with equal keys produce
//! byte-identical [`QueryOutcome`](crate::QueryOutcome)s on the same
//! environment. That is the contract a serving-layer result cache needs —
//! a cache hit may substitute the stored outcome for a fresh
//! [`QueryEngine::run`](crate::QueryEngine::run) without changing a
//! single byte (property-gated in `crates/bench/tests/qos_equivalence.rs`).
//!
//! The key therefore folds in **every** outcome-affecting request field:
//! the query kind (with the algorithm for plain TNN), the query point's
//! exact f64 bit patterns, the issue slot (access time depends on where
//! in each broadcast cycle the query starts), the materialized
//! per-channel ANN modes, the per-query phase substitution (or its
//! absence), the answer-object retrieval flag, and the channel count
//! itself. Float fields are keyed by `to_bits`, so `-0.0 ≠ 0.0` and any
//! NaN pattern is just another (never-hit, since NaN queries error) key.
//!
//! Since environments became mutable (epoch-versioned snapshots), the
//! key also folds the **environment's identity**: its mutation epoch and
//! content fingerprint. A cache keyed this way can never serve an answer
//! computed against a replaced or mutated environment — the stale
//! entries' keys simply stop being derivable, and they age out of the
//! LRU like any other cold entry.

use crate::engine::{Query, QueryKind};
use crate::{Algorithm, AnnMode};
use tnn_broadcast::MultiChannelEnv;

/// One per-channel ANN mode, encoded exactly (discriminant + parameter
/// bits) so the key is `Eq + Hash` despite [`AnnMode`]'s float fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum AnnKey {
    Exact,
    Dynamic(u64),
    Fixed(u64),
}

impl From<AnnMode> for AnnKey {
    fn from(mode: AnnMode) -> Self {
        match mode {
            AnnMode::Exact => AnnKey::Exact,
            AnnMode::Dynamic { factor } => AnnKey::Dynamic(factor.to_bits()),
            AnnMode::Fixed { alpha } => AnnKey::Fixed(alpha.to_bits()),
        }
    }
}

/// The query kind with its algorithm flattened in, so `Tnn(DoubleNn)` and
/// `Chain` (which runs the same pipeline but reports a different
/// [`QueryKind`](crate::QueryKind)) key differently, as their outcomes do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum KindKey {
    Tnn(Algorithm),
    Chain,
    OrderFree,
    RoundTrip,
}

/// The cache identity of one [`Query`] against a `k`-channel environment.
///
/// Built by [`Query::cache_key`]; equal keys guarantee byte-identical
/// engine outcomes on the same environment. Uniform and per-channel ANN
/// specifications that resolve to the same modes share a key (both are
/// materialized through [`AnnSpec::mode`](crate::AnnSpec::mode)), and a
/// query carrying no phase substitution keys differently from one that
/// spells out the environment's own phases — the engine runs them through
/// different overlay paths, and the key does not know the environment's
/// phases to prove them equal.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct QueryKey {
    kind: KindKey,
    point_bits: (u64, u64),
    issued_at: u64,
    channels: usize,
    env_epoch: u64,
    env_fingerprint: u64,
    ann: Vec<AnnKey>,
    phases: Option<Vec<u64>>,
    retrieve_answer_objects: bool,
}

impl QueryKey {
    /// The epoch of the environment this key was derived against.
    #[inline]
    pub fn env_epoch(&self) -> u64 {
        self.env_epoch
    }

    /// The content fingerprint of the environment this key was derived
    /// against.
    #[inline]
    pub fn env_fingerprint(&self) -> u64 {
        self.env_fingerprint
    }

    /// `true` when this key was derived against an environment with
    /// `env`'s identity — serving layers use it to detect that the
    /// environment was swapped between key derivation and execution, and
    /// re-derive the key against the snapshot they actually run on.
    #[inline]
    pub fn matches_env(&self, env: &MultiChannelEnv) -> bool {
        self.channels == env.len()
            && self.env_epoch == env.epoch()
            && self.env_fingerprint == env.fingerprint()
    }
}

impl Query {
    /// Derives the result-cache key of this query against `env`. Two
    /// queries with equal keys produce byte-identical outcomes (the
    /// engine is deterministic in exactly the folded fields, and the
    /// key carries the environment's epoch + fingerprint, so keys from
    /// different environment snapshots never collide).
    ///
    /// # Panics
    /// Panics when a per-channel ANN mode list does not match the
    /// channel count — the same condition under which
    /// [`QueryEngine::run`] panics, so callers that validated the query
    /// via [`Query::check_channels`] (as `tnn-serve` does at admission)
    /// never hit it.
    ///
    /// [`QueryEngine::run`]: crate::QueryEngine::run
    pub fn cache_key(&self, env: &MultiChannelEnv) -> QueryKey {
        let k = env.len();
        let kind = match self.kind() {
            QueryKind::Tnn(algorithm) => KindKey::Tnn(algorithm),
            QueryKind::Chain => KindKey::Chain,
            QueryKind::OrderFree => KindKey::OrderFree,
            QueryKind::RoundTrip => KindKey::RoundTrip,
        };
        let spec = self.ann_spec();
        spec.check_channels(k);
        let p = self.point();
        QueryKey {
            kind,
            point_bits: (p.x.to_bits(), p.y.to_bits()),
            issued_at: self.issue_slot(),
            channels: k,
            env_epoch: env.epoch(),
            env_fingerprint: env.fingerprint(),
            ann: (0..k).map(|i| AnnKey::from(spec.mode(i))).collect(),
            phases: self.phase_overrides().map(<[u64]>::to_vec),
            retrieve_answer_objects: self.retrieves_answer_objects(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    use std::sync::Arc;
    use tnn_broadcast::BroadcastParams;
    use tnn_geom::Point;
    use tnn_rtree::{PackingAlgorithm, RTree};

    /// A tiny k-channel environment; `n0` varies channel 0's dataset so
    /// tests can build content-distinct environments.
    fn env_sized(k: usize, n0: usize) -> MultiChannelEnv {
        let params = BroadcastParams::new(64);
        let trees = (0..k)
            .map(|c| {
                let n = if c == 0 { n0 } else { 10 + 3 * c };
                let pts: Vec<Point> = (0..n)
                    .map(|i| Point::new((i * 7 + c) as f64, (i * 11) as f64))
                    .collect();
                Arc::new(RTree::build(&pts, params.rtree_params(), PackingAlgorithm::Str).unwrap())
            })
            .collect();
        let phases: Vec<u64> = (0..k as u64).map(|i| i * 13 + 1).collect();
        MultiChannelEnv::new(trees, params, &phases)
    }

    fn env(k: usize) -> MultiChannelEnv {
        env_sized(k, 12)
    }

    fn hash_of(key: &QueryKey) -> u64 {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        h.finish()
    }

    #[test]
    fn equal_queries_share_a_key() {
        let e = env(2);
        let a = Query::tnn(Point::new(3.0, 4.0))
            .issued_at(7)
            .phases(&[1, 2]);
        let b = Query::tnn(Point::new(3.0, 4.0))
            .issued_at(7)
            .phases(&[1, 2]);
        assert_eq!(a.cache_key(&e), b.cache_key(&e));
        assert_eq!(hash_of(&a.cache_key(&e)), hash_of(&b.cache_key(&e)));
        // ... and the same query keys identically against an environment
        // with the same content identity.
        assert_eq!(a.cache_key(&e), a.cache_key(&env(2)));
    }

    #[test]
    fn every_outcome_affecting_field_changes_the_key() {
        let e = env(2);
        let base = Query::tnn(Point::new(3.0, 4.0))
            .issued_at(7)
            .phases(&[1, 2]);
        let key = base.cache_key(&e);
        let variants = [
            Query::tnn(Point::new(3.0, 4.5))
                .issued_at(7)
                .phases(&[1, 2]),
            Query::tnn(Point::new(3.0, 4.0))
                .issued_at(8)
                .phases(&[1, 2]),
            Query::tnn(Point::new(3.0, 4.0))
                .issued_at(7)
                .phases(&[1, 3]),
            Query::tnn(Point::new(3.0, 4.0)).issued_at(7), // no substitution
            Query::tnn(Point::new(3.0, 4.0))
                .algorithm(Algorithm::WindowBased)
                .issued_at(7)
                .phases(&[1, 2]),
            Query::tnn(Point::new(3.0, 4.0))
                .ann(AnnMode::Dynamic { factor: 1.0 })
                .issued_at(7)
                .phases(&[1, 2]),
            Query::tnn(Point::new(3.0, 4.0))
                .issued_at(7)
                .phases(&[1, 2])
                .retrieve_answer_objects(false),
        ];
        for variant in &variants {
            assert_ne!(variant.cache_key(&e), key, "{variant:?}");
        }
    }

    #[test]
    fn environment_identity_changes_the_key() {
        let q = Query::tnn(Point::new(3.0, 4.0)).issued_at(7);
        let e = env(2);
        let key = q.cache_key(&e);
        assert_eq!(key.env_epoch(), 0);
        assert_eq!(key.env_fingerprint(), e.fingerprint());
        assert!(key.matches_env(&e));
        // Different dataset on one channel → different fingerprint → miss.
        let other = env_sized(2, 13);
        assert_ne!(q.cache_key(&other), key);
        assert!(!key.matches_env(&other));
        // An advance to identical content still bumps the epoch → miss.
        let trees = e
            .channels()
            .iter()
            .map(|c| Arc::clone(c.tree_arc()))
            .collect();
        let advanced = e.advance(trees);
        assert_eq!(advanced.fingerprint(), e.fingerprint());
        assert_ne!(q.cache_key(&advanced), key);
        assert!(!key.matches_env(&advanced));
        // Environment phases are folded via the fingerprint: a rephased
        // environment keys differently even for phase-overriding queries
        // (the engine may behave identically there, but the key has no
        // way to prove it — correctness over hit rate).
        let rephased = e.with_phases(&[9, 9]);
        assert_ne!(q.cache_key(&rephased), key);
    }

    #[test]
    fn kinds_key_differently_even_on_the_shared_pipeline() {
        let e = env(2);
        let p = Point::new(9.0, 9.0);
        // Chain runs the Double-NN pipeline but reports QueryKind::Chain
        // in its outcome, so the two must not share a cache entry.
        let tnn = Query::tnn(p).algorithm(Algorithm::DoubleNn).cache_key(&e);
        let chain = Query::chain(p).cache_key(&e);
        let free = Query::order_free(p).cache_key(&e);
        let tour = Query::round_trip(p).cache_key(&e);
        assert_ne!(tnn, chain);
        assert_ne!(chain, free);
        assert_ne!(free, tour);
    }

    #[test]
    fn uniform_and_per_channel_ann_resolve_to_one_key() {
        let e3 = env(3);
        let p = Point::new(1.0, 2.0);
        let uniform = Query::tnn(p).ann(AnnMode::Dynamic { factor: 0.5 });
        let explicit = Query::tnn(p).ann_modes(&[AnnMode::Dynamic { factor: 0.5 }; 3]);
        assert_eq!(uniform.cache_key(&e3), explicit.cache_key(&e3));
        // ...but the same uniform spec at a different k keys differently.
        assert_ne!(uniform.cache_key(&e3), uniform.cache_key(&env(2)));
    }

    #[test]
    fn float_identity_is_bitwise() {
        let e = env(2);
        let pos = Query::tnn(Point::new(0.0, 1.0)).cache_key(&e);
        let neg = Query::tnn(Point::new(-0.0, 1.0)).cache_key(&e);
        assert_ne!(pos, neg, "-0.0 and 0.0 are distinct keys");
    }

    #[test]
    #[should_panic(expected = "one ANN mode per channel")]
    fn per_channel_arity_mismatch_panics() {
        let _ = Query::tnn(Point::ORIGIN)
            .ann_modes(&[AnnMode::Exact; 2])
            .cache_key(&env(3));
    }
}
