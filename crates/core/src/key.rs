//! Result-cache key derivation: [`QueryKey`], the hashable identity of a
//! [`Query`] against a `k`-channel environment.
//!
//! The engine is deterministic: two queries with equal keys produce
//! byte-identical [`QueryOutcome`](crate::QueryOutcome)s on the same
//! environment. That is the contract a serving-layer result cache needs —
//! a cache hit may substitute the stored outcome for a fresh
//! [`QueryEngine::run`](crate::QueryEngine::run) without changing a
//! single byte (property-gated in `crates/bench/tests/qos_equivalence.rs`).
//!
//! The key therefore folds in **every** outcome-affecting request field:
//! the query kind (with the algorithm for plain TNN), the query point's
//! exact f64 bit patterns, the issue slot (access time depends on where
//! in each broadcast cycle the query starts), the materialized
//! per-channel ANN modes, the per-query phase substitution (or its
//! absence), the answer-object retrieval flag, and the channel count
//! itself. Float fields are keyed by `to_bits`, so `-0.0 ≠ 0.0` and any
//! NaN pattern is just another (never-hit, since NaN queries error) key.

use crate::engine::{Query, QueryKind};
use crate::{Algorithm, AnnMode};

/// One per-channel ANN mode, encoded exactly (discriminant + parameter
/// bits) so the key is `Eq + Hash` despite [`AnnMode`]'s float fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum AnnKey {
    Exact,
    Dynamic(u64),
    Fixed(u64),
}

impl From<AnnMode> for AnnKey {
    fn from(mode: AnnMode) -> Self {
        match mode {
            AnnMode::Exact => AnnKey::Exact,
            AnnMode::Dynamic { factor } => AnnKey::Dynamic(factor.to_bits()),
            AnnMode::Fixed { alpha } => AnnKey::Fixed(alpha.to_bits()),
        }
    }
}

/// The query kind with its algorithm flattened in, so `Tnn(DoubleNn)` and
/// `Chain` (which runs the same pipeline but reports a different
/// [`QueryKind`](crate::QueryKind)) key differently, as their outcomes do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum KindKey {
    Tnn(Algorithm),
    Chain,
    OrderFree,
    RoundTrip,
}

/// The cache identity of one [`Query`] against a `k`-channel environment.
///
/// Built by [`Query::cache_key`]; equal keys guarantee byte-identical
/// engine outcomes on the same environment. Uniform and per-channel ANN
/// specifications that resolve to the same modes share a key (both are
/// materialized through [`AnnSpec::mode`](crate::AnnSpec::mode)), and a
/// query carrying no phase substitution keys differently from one that
/// spells out the environment's own phases — the engine runs them through
/// different overlay paths, and the key does not know the environment's
/// phases to prove them equal.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct QueryKey {
    kind: KindKey,
    point_bits: (u64, u64),
    issued_at: u64,
    channels: usize,
    ann: Vec<AnnKey>,
    phases: Option<Vec<u64>>,
    retrieve_answer_objects: bool,
}

impl Query {
    /// Derives the result-cache key of this query against a `k`-channel
    /// environment. Two queries with equal keys produce byte-identical
    /// outcomes on the same environment (the engine is deterministic in
    /// exactly the folded fields).
    ///
    /// # Panics
    /// Panics when a per-channel ANN mode list does not match `k` — the
    /// same condition under which [`QueryEngine::run`] panics, so callers
    /// that validated the query via [`Query::check_channels`] (as
    /// `tnn-serve` does at admission) never hit it.
    ///
    /// [`QueryEngine::run`]: crate::QueryEngine::run
    pub fn cache_key(&self, k: usize) -> QueryKey {
        let kind = match self.kind() {
            QueryKind::Tnn(algorithm) => KindKey::Tnn(algorithm),
            QueryKind::Chain => KindKey::Chain,
            QueryKind::OrderFree => KindKey::OrderFree,
            QueryKind::RoundTrip => KindKey::RoundTrip,
        };
        let spec = self.ann_spec();
        spec.check_channels(k);
        let p = self.point();
        QueryKey {
            kind,
            point_bits: (p.x.to_bits(), p.y.to_bits()),
            issued_at: self.issue_slot(),
            channels: k,
            ann: (0..k).map(|i| AnnKey::from(spec.mode(i))).collect(),
            phases: self.phase_overrides().map(<[u64]>::to_vec),
            retrieve_answer_objects: self.retrieves_answer_objects(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    use tnn_geom::Point;

    fn hash_of(key: &QueryKey) -> u64 {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        h.finish()
    }

    #[test]
    fn equal_queries_share_a_key() {
        let a = Query::tnn(Point::new(3.0, 4.0))
            .issued_at(7)
            .phases(&[1, 2]);
        let b = Query::tnn(Point::new(3.0, 4.0))
            .issued_at(7)
            .phases(&[1, 2]);
        assert_eq!(a.cache_key(2), b.cache_key(2));
        assert_eq!(hash_of(&a.cache_key(2)), hash_of(&b.cache_key(2)));
    }

    #[test]
    fn every_outcome_affecting_field_changes_the_key() {
        let base = Query::tnn(Point::new(3.0, 4.0))
            .issued_at(7)
            .phases(&[1, 2]);
        let key = base.cache_key(2);
        let variants = [
            Query::tnn(Point::new(3.0, 4.5))
                .issued_at(7)
                .phases(&[1, 2]),
            Query::tnn(Point::new(3.0, 4.0))
                .issued_at(8)
                .phases(&[1, 2]),
            Query::tnn(Point::new(3.0, 4.0))
                .issued_at(7)
                .phases(&[1, 3]),
            Query::tnn(Point::new(3.0, 4.0)).issued_at(7), // no substitution
            Query::tnn(Point::new(3.0, 4.0))
                .algorithm(Algorithm::WindowBased)
                .issued_at(7)
                .phases(&[1, 2]),
            Query::tnn(Point::new(3.0, 4.0))
                .ann(AnnMode::Dynamic { factor: 1.0 })
                .issued_at(7)
                .phases(&[1, 2]),
            Query::tnn(Point::new(3.0, 4.0))
                .issued_at(7)
                .phases(&[1, 2])
                .retrieve_answer_objects(false),
        ];
        for variant in &variants {
            assert_ne!(variant.cache_key(2), key, "{variant:?}");
        }
    }

    #[test]
    fn kinds_key_differently_even_on_the_shared_pipeline() {
        let p = Point::new(9.0, 9.0);
        // Chain runs the Double-NN pipeline but reports QueryKind::Chain
        // in its outcome, so the two must not share a cache entry.
        let tnn = Query::tnn(p).algorithm(Algorithm::DoubleNn).cache_key(2);
        let chain = Query::chain(p).cache_key(2);
        let free = Query::order_free(p).cache_key(2);
        let tour = Query::round_trip(p).cache_key(2);
        assert_ne!(tnn, chain);
        assert_ne!(chain, free);
        assert_ne!(free, tour);
    }

    #[test]
    fn uniform_and_per_channel_ann_resolve_to_one_key() {
        let p = Point::new(1.0, 2.0);
        let uniform = Query::tnn(p).ann(AnnMode::Dynamic { factor: 0.5 });
        let explicit = Query::tnn(p).ann_modes(&[AnnMode::Dynamic { factor: 0.5 }; 3]);
        assert_eq!(uniform.cache_key(3), explicit.cache_key(3));
        // ...but the same uniform spec at a different k keys differently.
        assert_ne!(uniform.cache_key(3), uniform.cache_key(2));
    }

    #[test]
    fn float_identity_is_bitwise() {
        let pos = Query::tnn(Point::new(0.0, 1.0)).cache_key(2);
        let neg = Query::tnn(Point::new(-0.0, 1.0)).cache_key(2);
        assert_ne!(pos, neg, "-0.0 and 0.0 are distinct keys");
    }

    #[test]
    #[should_panic(expected = "one ANN mode per channel")]
    fn per_channel_arity_mismatch_panics() {
        let _ = Query::tnn(Point::ORIGIN)
            .ann_modes(&[AnnMode::Exact; 2])
            .cache_key(3);
    }
}
