//! Error type for TNN query execution.

use std::fmt;

/// Errors arising while executing a TNN query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TnnError {
    /// The environment does not provide the number of channels the query
    /// needs (two for plain TNN, `k` for chained TNN).
    WrongChannelCount {
        /// Channels required by the query.
        needed: usize,
        /// Channels available in the environment.
        available: usize,
    },
    /// The query point has non-finite coordinates.
    NonFiniteQuery,
    /// A channel broadcasts an empty dataset — no feasible route exists
    /// through it, so the estimate phase cannot produce a radius.
    EmptyChannel {
        /// Index of the offending channel.
        channel: usize,
    },
}

impl fmt::Display for TnnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TnnError::WrongChannelCount { needed, available } => write!(
                f,
                "query needs {needed} broadcast channels but the environment has {available}"
            ),
            TnnError::NonFiniteQuery => write!(f, "query point has non-finite coordinates"),
            TnnError::EmptyChannel { channel } => {
                write!(f, "channel {channel} broadcasts an empty dataset")
            }
        }
    }
}

impl std::error::Error for TnnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = TnnError::WrongChannelCount {
            needed: 2,
            available: 1,
        };
        assert!(e.to_string().contains("2"));
        assert!(TnnError::NonFiniteQuery.to_string().contains("non-finite"));
        assert!(TnnError::EmptyChannel { channel: 3 }
            .to_string()
            .contains("channel 3"));
    }
}
