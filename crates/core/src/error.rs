//! Error type for TNN query execution.

use std::fmt;

/// Errors arising while executing a TNN query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TnnError {
    /// The environment does not provide the number of channels the query
    /// needs (two for plain TNN, `k` for chained TNN).
    WrongChannelCount {
        /// Channels required by the query.
        needed: usize,
        /// Channels available in the environment.
        available: usize,
    },
    /// The query point has non-finite coordinates.
    NonFiniteQuery,
    /// A channel broadcasts an empty dataset — no feasible route exists
    /// through it, so the estimate phase cannot produce a radius.
    EmptyChannel {
        /// Index of the offending channel.
        channel: usize,
    },
    /// A serving front-end refused the query because its submission
    /// queue was full (the `Reject` backpressure policy), or evicted it
    /// from the queue to admit newer work (the `Shed` policy). The query
    /// itself is well-formed; resubmitting later may succeed.
    Overloaded,
    /// The query was admitted but never executed: the serving front-end
    /// shut down (or was asked to cancel its backlog) before a worker
    /// picked it up.
    Cancelled,
    /// The query carried a deadline that elapsed before a worker could
    /// answer it — it was refused at admission, evicted from the queue by
    /// deadline-aware shedding, or discarded at dequeue. The answer was
    /// never computed; resubmitting with a fresh deadline may succeed.
    DeadlineExceeded,
    /// A broadcast channel could not be tuned in — the packet was lost
    /// or the channel is in an outage. **Recoverable**: `retry_after`
    /// is the injector's estimate of how many retry attempts until the
    /// channel clears (`1` for a transient drop), and the serving
    /// layer's retry ladder normally absorbs this error before a caller
    /// ever sees it.
    ChannelUnavailable {
        /// Index of the unreachable channel.
        channel: usize,
        /// Estimated retry attempts until the channel clears.
        retry_after: u64,
    },
    /// The query died to a server-side defect (a worker panicked while
    /// executing or holding it). The submission was well-formed and the
    /// server keeps serving; resubmitting usually succeeds.
    Internal,
}

impl fmt::Display for TnnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TnnError::WrongChannelCount { needed, available } => write!(
                f,
                "query needs {needed} broadcast channels but the environment has {available}"
            ),
            TnnError::NonFiniteQuery => write!(f, "query point has non-finite coordinates"),
            TnnError::EmptyChannel { channel } => {
                write!(f, "channel {channel} broadcasts an empty dataset")
            }
            TnnError::Overloaded => {
                write!(f, "serving queue is full; the query was refused or shed")
            }
            TnnError::Cancelled => {
                write!(f, "query was cancelled before a worker executed it")
            }
            TnnError::DeadlineExceeded => {
                write!(f, "query deadline elapsed before a worker could answer it")
            }
            TnnError::ChannelUnavailable {
                channel,
                retry_after,
            } => write!(
                f,
                "channel {channel} could not be tuned in (retry after {retry_after} attempts)"
            ),
            TnnError::Internal => {
                write!(f, "query died to an internal server fault; resubmit")
            }
        }
    }
}

impl std::error::Error for TnnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = TnnError::WrongChannelCount {
            needed: 2,
            available: 1,
        };
        assert!(e.to_string().contains("2"));
        assert!(TnnError::NonFiniteQuery.to_string().contains("non-finite"));
        assert!(TnnError::EmptyChannel { channel: 3 }
            .to_string()
            .contains("channel 3"));
        assert!(TnnError::Overloaded.to_string().contains("full"));
        assert!(TnnError::Cancelled.to_string().contains("cancelled"));
        assert!(TnnError::DeadlineExceeded.to_string().contains("deadline"));
        let unavailable = TnnError::ChannelUnavailable {
            channel: 2,
            retry_after: 4,
        };
        assert!(unavailable.to_string().contains("channel 2"));
        assert!(unavailable.to_string().contains("4 attempts"));
        assert!(TnnError::Internal.to_string().contains("internal"));
    }
}
