//! The exact TNN oracle: in-memory ground truth for correctness tests and
//! the Table 3 fail-rate measurement.

use crate::{chain_join, TnnPair};
use tnn_geom::Point;
use tnn_rtree::{ObjectId, RTree};

/// Computes the true optimum `argmin_{(s,r)} dis(p, s) + dis(s, r)` over
/// two in-memory R-trees.
///
/// Sweeps `S` by increasing `dis(p, s)` (incremental distance browsing)
/// and looks up each candidate's nearest neighbor in `R`; once
/// `dis(p, s)` alone reaches the best total, no further `s` can win, so
/// the sweep terminates after a handful of candidates in practice.
pub fn exact_tnn(p: Point, s_tree: &RTree, r_tree: &RTree) -> TnnPair {
    let mut best: Option<TnnPair> = None;
    for (s_pt, s_id, d_ps) in s_tree.nn_iter(p) {
        if let Some(b) = &best {
            if d_ps >= b.dist {
                break;
            }
        }
        let nn = r_tree
            .nearest_neighbor(s_pt)
            .expect("R-trees always hold at least one object");
        let total = d_ps + nn.dist;
        if best.as_ref().is_none_or(|b| total < b.dist) {
            best = Some(TnnPair {
                s: (s_pt, s_id),
                r: (nn.point, nn.object),
                dist: total,
            });
        }
    }
    best.expect("R-trees always hold at least one object")
}

/// Exact chained TNN over `k` in-memory trees (ground truth for the
/// chained extension): minimizes `dis(p, s₁) + Σ dis(sᵢ, sᵢ₊₁)`.
///
/// Materializes all layers and runs the chain DP — intended for test-size
/// datasets (cost `O(Σ nᵢ·nᵢ₊₁)`).
pub fn exact_chain_tnn(p: Point, trees: &[&RTree]) -> (Vec<(Point, ObjectId)>, f64) {
    let layers: Vec<Vec<(Point, ObjectId)>> = trees
        .iter()
        .map(|t| t.objects_in_leaf_order().collect())
        .collect();
    chain_join(p, &layers).expect("R-trees always hold at least one object")
}

#[cfg(test)]
mod tests {
    use super::*;
    use tnn_geom::transitive_dist;
    use tnn_rtree::{PackingAlgorithm, RTreeParams};

    fn tree(coords: &[(f64, f64)]) -> RTree {
        let pts: Vec<Point> = coords.iter().map(|&(x, y)| Point::new(x, y)).collect();
        RTree::build(&pts, RTreeParams::default(), PackingAlgorithm::Str).unwrap()
    }

    fn pseudo(n: usize, salt: u64) -> Vec<(f64, f64)> {
        (0..n)
            .map(|i| {
                let a = (i as u64)
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(salt);
                let x = (a >> 33) % 10_000;
                let y = (a >> 13) % 10_000;
                (x as f64, y as f64)
            })
            .collect()
    }

    #[test]
    fn oracle_matches_brute_force() {
        let s_coords = pseudo(120, 1);
        let r_coords = pseudo(150, 2);
        let s_tree = tree(&s_coords);
        let r_tree = tree(&r_coords);
        for p in [
            Point::new(0.0, 0.0),
            Point::new(5_000.0, 5_000.0),
            Point::new(12_000.0, -500.0),
        ] {
            let got = exact_tnn(p, &s_tree, &r_tree);
            let mut best = f64::INFINITY;
            for &(sx, sy) in &s_coords {
                for &(rx, ry) in &r_coords {
                    best = best.min(transitive_dist(p, Point::new(sx, sy), Point::new(rx, ry)));
                }
            }
            assert!((got.dist - best).abs() < 1e-9, "query {p:?}");
            // The reported pair realizes the reported distance.
            assert!((transitive_dist(p, got.s.0, got.r.0) - got.dist).abs() < 1e-9);
        }
    }

    #[test]
    fn oracle_on_single_point_trees() {
        let s_tree = tree(&[(1.0, 0.0)]);
        let r_tree = tree(&[(1.0, 7.0)]);
        let got = exact_tnn(Point::ORIGIN, &s_tree, &r_tree);
        assert!((got.dist - 8.0).abs() < 1e-12);
    }

    #[test]
    fn oracle_is_direction_sensitive() {
        // TNN is not symmetric in (S, R): p→s→r differs from p→r→s.
        let a = tree(&[(10.0, 0.0)]);
        let b = tree(&[(1.0, 0.0)]);
        let p = Point::ORIGIN;
        let ab = exact_tnn(p, &a, &b);
        let ba = exact_tnn(p, &b, &a);
        assert!((ab.dist - 19.0).abs() < 1e-12); // 10 + 9
        assert!((ba.dist - 10.0).abs() < 1e-12); // 1 + 9
    }

    #[test]
    fn chain_oracle_two_layers_matches_pair_oracle() {
        let s_coords = pseudo(40, 3);
        let r_coords = pseudo(50, 4);
        let s_tree = tree(&s_coords);
        let r_tree = tree(&r_coords);
        let p = Point::new(3_000.0, 3_000.0);
        let pair = exact_tnn(p, &s_tree, &r_tree);
        let (path, total) = exact_chain_tnn(p, &[&s_tree, &r_tree]);
        assert_eq!(path.len(), 2);
        assert!((total - pair.dist).abs() < 1e-9);
    }
}
