//! Query-execution configuration.

use crate::AnnMode;
use serde::{Deserialize, Serialize};
use tnn_broadcast::InlineVec;

/// The TNN query-processing algorithm to run (paper §3–§4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Algorithm {
    /// Window-Based-TNN-Search \[19\], adapted to multi-channel: NN of `p`
    /// in `S`, then NN of that `s` in `R` (sequential estimate), parallel
    /// filter phase.
    WindowBased,
    /// Approximate-TNN-Search \[19\]: search radius computed from the
    /// uniform-density formula (eq. 1); skips the estimate-phase index
    /// searches entirely but may fail on skewed data.
    ApproximateTnn,
    /// Double-NN-Search (§4.1, Algorithm 1): both NN queries run from `p`
    /// in parallel as soon as the roots appear.
    DoubleNn,
    /// Hybrid-NN-Search (§4.2, Algorithm 2): like Double-NN, but the
    /// search finishing first re-targets the other (query-point switch or
    /// transitive-metric switch) to shrink the search range.
    HybridNn,
}

impl Algorithm {
    /// All four algorithms, in the paper's presentation order.
    pub const ALL: [Algorithm; 4] = [
        Algorithm::WindowBased,
        Algorithm::ApproximateTnn,
        Algorithm::DoubleNn,
        Algorithm::HybridNn,
    ];

    /// Short human-readable name (matches the paper's figure legends).
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::WindowBased => "Window-Based-TNN",
            Algorithm::ApproximateTnn => "Approximate-TNN",
            Algorithm::DoubleNn => "Double-NN",
            Algorithm::HybridNn => "Hybrid-NN",
        }
    }

    /// `true` for the algorithms that always return the correct answer
    /// (everything except Approximate-TNN, see Table 3).
    pub fn is_exact(&self) -> bool {
        !matches!(self, Algorithm::ApproximateTnn)
    }
}

/// Per-channel ANN pruning modes — k-ary, length-checked storage with an
/// inline fast path for the common two-channel case (no allocation up to
/// `k = 2`).
///
/// Dereferences to `[AnnMode]`, so indexing (`modes[0]`), iteration, and
/// `len()` all work as on a slice.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct AnnModes(InlineVec<AnnMode, 2>);

impl AnnModes {
    /// Exact (eNN) search on every one of `k` channels.
    pub fn exact(k: usize) -> Self {
        AnnModes::uniform(AnnMode::Exact, k)
    }

    /// The same `mode` on every one of `k` channels.
    pub fn uniform(mode: AnnMode, k: usize) -> Self {
        AnnModes((0..k).map(|_| mode).collect())
    }

    /// Copies per-channel modes in (allocation-free for `k ≤ 2`).
    ///
    /// # Panics
    /// Panics on an empty slice — every channel needs a mode.
    pub fn from_slice(modes: &[AnnMode]) -> Self {
        assert!(!modes.is_empty(), "at least one ANN mode is required");
        AnnModes(InlineVec::from_slice(modes))
    }

    /// The modes as a slice.
    pub fn as_slice(&self) -> &[AnnMode] {
        self.0.as_slice()
    }
}

impl std::ops::Deref for AnnModes {
    type Target = [AnnMode];
    fn deref(&self) -> &[AnnMode] {
        self.0.as_slice()
    }
}

impl From<[AnnMode; 2]> for AnnModes {
    fn from(modes: [AnnMode; 2]) -> Self {
        AnnModes::from_slice(&modes)
    }
}

/// How a query chooses ANN modes without committing to a channel count:
/// either one mode for every channel (whatever `k` turns out to be) or an
/// explicit per-channel list that must match `k` exactly.
///
/// This is what [`Query`](crate::Query) carries; it resolves against the
/// engine's channel count at execution time via [`AnnSpec::mode`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AnnSpec {
    /// The same mode on every channel, independent of channel count.
    Uniform(AnnMode),
    /// One explicit mode per channel, length-checked against the
    /// environment at execution time.
    PerChannel(AnnModes),
}

impl AnnSpec {
    /// Verifies this spec fits a `k`-channel environment.
    ///
    /// # Panics
    /// Panics when a [`AnnSpec::PerChannel`] list has the wrong length
    /// (the same contract as [`MultiChannelEnv::new`]'s phase check).
    ///
    /// [`MultiChannelEnv::new`]: tnn_broadcast::MultiChannelEnv::new
    pub fn check_channels(&self, k: usize) {
        if let AnnSpec::PerChannel(modes) = self {
            assert_eq!(modes.len(), k, "one ANN mode per channel is required");
        }
    }

    /// The mode for channel `i` (call [`AnnSpec::check_channels`] first).
    #[inline]
    pub fn mode(&self, i: usize) -> AnnMode {
        match self {
            AnnSpec::Uniform(mode) => *mode,
            AnnSpec::PerChannel(modes) => modes[i],
        }
    }

    /// Materializes the per-channel modes for a `k`-channel environment.
    ///
    /// # Panics
    /// As [`AnnSpec::check_channels`].
    pub fn modes(&self, k: usize) -> AnnModes {
        self.check_channels(k);
        match self {
            AnnSpec::Uniform(mode) => AnnModes::uniform(*mode, k),
            AnnSpec::PerChannel(modes) => modes.clone(),
        }
    }
}

impl Default for AnnSpec {
    fn default() -> Self {
        AnnSpec::Uniform(AnnMode::Exact)
    }
}

/// Full configuration of one TNN query execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TnnConfig {
    /// Which algorithm to run.
    pub algorithm: Algorithm,
    /// ANN pruning mode per channel (`ann[0]` for the `S` channel,
    /// `ann[1]` for the `R` channel, and so on for chained queries).
    /// [`AnnMode::Exact`] everywhere reproduces the eNN behaviour of
    /// §6.1; the §6.2 experiments mix exact and dynamic modes per dataset
    /// density. The length must match the environment's channel count at
    /// execution time.
    pub ann: AnnModes,
    /// When `true` (paper model), the client finally wakes up to download
    /// the data pages of the answer objects; their cost is included in
    /// both metrics.
    pub retrieve_answer_objects: bool,
}

impl TnnConfig {
    /// Configuration for `algorithm` with exact (eNN) search on both
    /// channels of the paper's two-channel TNN query and final object
    /// retrieval on. For `k > 2` channels use [`TnnConfig::exact_for`].
    pub fn exact(algorithm: Algorithm) -> Self {
        TnnConfig::exact_for(algorithm, 2)
    }

    /// Configuration for `algorithm` over a `k`-channel environment with
    /// exact (eNN) search on every channel and final object retrieval on.
    pub fn exact_for(algorithm: Algorithm, k: usize) -> Self {
        TnnConfig {
            algorithm,
            ann: AnnModes::exact(k),
            retrieve_answer_objects: true,
        }
    }

    /// Same configuration with the given per-channel ANN modes — k-ary:
    /// one entry per channel, in channel order.
    ///
    /// # Panics
    /// Panics on an empty slice; a length mismatch against the
    /// environment's channel count panics at execution time (the same
    /// contract as [`MultiChannelEnv::new`]'s phase check).
    ///
    /// [`MultiChannelEnv::new`]: tnn_broadcast::MultiChannelEnv::new
    pub fn with_ann_modes(mut self, modes: &[AnnMode]) -> Self {
        self.ann = AnnModes::from_slice(modes);
        self
    }
}

impl Default for TnnConfig {
    fn default() -> Self {
        TnnConfig::exact(Algorithm::HybridNn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_exactness() {
        assert_eq!(Algorithm::DoubleNn.name(), "Double-NN");
        assert!(Algorithm::DoubleNn.is_exact());
        assert!(Algorithm::WindowBased.is_exact());
        assert!(Algorithm::HybridNn.is_exact());
        assert!(!Algorithm::ApproximateTnn.is_exact());
        assert_eq!(Algorithm::ALL.len(), 4);
    }

    #[test]
    fn config_builders() {
        let c = TnnConfig::exact(Algorithm::DoubleNn)
            .with_ann_modes(&[AnnMode::Exact, AnnMode::Dynamic { factor: 1.0 }]);
        assert_eq!(c.algorithm, Algorithm::DoubleNn);
        assert_eq!(c.ann[0], AnnMode::Exact);
        assert_eq!(c.ann[1], AnnMode::Dynamic { factor: 1.0 });
        assert_eq!(c.ann.len(), 2);
        assert!(c.retrieve_answer_objects);
    }

    #[test]
    fn exact_for_builds_k_channel_configs() {
        let c = TnnConfig::exact_for(Algorithm::HybridNn, 4);
        assert_eq!(c.ann.len(), 4);
        assert!(c.ann.iter().all(|m| *m == AnnMode::Exact));
        assert_eq!(TnnConfig::exact(Algorithm::HybridNn).ann.len(), 2);
    }

    #[test]
    fn k_ary_modes_for_chained_queries() {
        let modes = [
            AnnMode::Exact,
            AnnMode::Dynamic { factor: 0.5 },
            AnnMode::Fixed { alpha: 0.1 },
        ];
        let c = TnnConfig::exact(Algorithm::DoubleNn).with_ann_modes(&modes);
        assert_eq!(c.ann.len(), 3);
        assert_eq!(c.ann.as_slice(), &modes);
    }

    #[test]
    #[should_panic(expected = "at least one ANN mode")]
    fn empty_ann_modes_panic() {
        let _ = TnnConfig::default().with_ann_modes(&[]);
    }

    #[test]
    fn ann_spec_resolution() {
        let uniform = AnnSpec::Uniform(AnnMode::Dynamic { factor: 1.0 });
        uniform.check_channels(5);
        assert_eq!(uniform.mode(3), AnnMode::Dynamic { factor: 1.0 });
        assert_eq!(uniform.modes(3).len(), 3);

        let per = AnnSpec::PerChannel(AnnModes::from_slice(&[
            AnnMode::Exact,
            AnnMode::Fixed { alpha: 0.2 },
        ]));
        per.check_channels(2);
        assert_eq!(per.mode(1), AnnMode::Fixed { alpha: 0.2 });
        assert_eq!(AnnSpec::default().mode(0), AnnMode::Exact);
    }

    #[test]
    #[should_panic(expected = "one ANN mode per channel")]
    fn ann_spec_checks_channel_count() {
        AnnSpec::PerChannel(AnnModes::exact(2)).check_channels(3);
    }
}
