//! Query-execution configuration.

use crate::AnnMode;
use serde::{Deserialize, Serialize};

/// The TNN query-processing algorithm to run (paper §3–§4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Algorithm {
    /// Window-Based-TNN-Search \[19\], adapted to multi-channel: NN of `p`
    /// in `S`, then NN of that `s` in `R` (sequential estimate), parallel
    /// filter phase.
    WindowBased,
    /// Approximate-TNN-Search \[19\]: search radius computed from the
    /// uniform-density formula (eq. 1); skips the estimate-phase index
    /// searches entirely but may fail on skewed data.
    ApproximateTnn,
    /// Double-NN-Search (§4.1, Algorithm 1): both NN queries run from `p`
    /// in parallel as soon as the roots appear.
    DoubleNn,
    /// Hybrid-NN-Search (§4.2, Algorithm 2): like Double-NN, but the
    /// search finishing first re-targets the other (query-point switch or
    /// transitive-metric switch) to shrink the search range.
    HybridNn,
}

impl Algorithm {
    /// All four algorithms, in the paper's presentation order.
    pub const ALL: [Algorithm; 4] = [
        Algorithm::WindowBased,
        Algorithm::ApproximateTnn,
        Algorithm::DoubleNn,
        Algorithm::HybridNn,
    ];

    /// Short human-readable name (matches the paper's figure legends).
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::WindowBased => "Window-Based-TNN",
            Algorithm::ApproximateTnn => "Approximate-TNN",
            Algorithm::DoubleNn => "Double-NN",
            Algorithm::HybridNn => "Hybrid-NN",
        }
    }

    /// `true` for the algorithms that always return the correct answer
    /// (everything except Approximate-TNN, see Table 3).
    pub fn is_exact(&self) -> bool {
        !matches!(self, Algorithm::ApproximateTnn)
    }
}

/// Full configuration of one TNN query execution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TnnConfig {
    /// Which algorithm to run.
    pub algorithm: Algorithm,
    /// ANN pruning mode per channel (`ann[0]` for the `S` channel,
    /// `ann[1]` for the `R` channel). [`AnnMode::Exact`] reproduces the
    /// eNN behaviour of §6.1; the §6.2 experiments mix exact and dynamic
    /// modes per dataset density.
    pub ann: [AnnMode; 2],
    /// When `true` (paper model), the client finally wakes up to download
    /// the data pages of the two answer objects; their cost is included
    /// in both metrics.
    pub retrieve_answer_objects: bool,
}

impl TnnConfig {
    /// Configuration for `algorithm` with exact (eNN) search everywhere
    /// and final object retrieval on.
    pub fn exact(algorithm: Algorithm) -> Self {
        TnnConfig {
            algorithm,
            ann: [AnnMode::Exact; 2],
            retrieve_answer_objects: true,
        }
    }

    /// Same configuration with the given per-channel ANN modes.
    pub fn with_ann(mut self, s_channel: AnnMode, r_channel: AnnMode) -> Self {
        self.ann = [s_channel, r_channel];
        self
    }
}

impl Default for TnnConfig {
    fn default() -> Self {
        TnnConfig::exact(Algorithm::HybridNn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_exactness() {
        assert_eq!(Algorithm::DoubleNn.name(), "Double-NN");
        assert!(Algorithm::DoubleNn.is_exact());
        assert!(Algorithm::WindowBased.is_exact());
        assert!(Algorithm::HybridNn.is_exact());
        assert!(!Algorithm::ApproximateTnn.is_exact());
        assert_eq!(Algorithm::ALL.len(), 4);
    }

    #[test]
    fn config_builders() {
        let c = TnnConfig::exact(Algorithm::DoubleNn)
            .with_ann(AnnMode::Exact, AnnMode::Dynamic { factor: 1.0 });
        assert_eq!(c.algorithm, Algorithm::DoubleNn);
        assert_eq!(c.ann[0], AnnMode::Exact);
        assert_eq!(c.ann[1], AnnMode::Dynamic { factor: 1.0 });
        assert!(c.retrieve_answer_objects);
    }
}
