//! Candidate-merge entry points: the join stage of every query pipeline,
//! factored out so layers that *gather* candidates elsewhere (the
//! scatter-gather shard router in `tnn-shard`) can merge them through
//! **the exact code path the engine uses** — same joins, same
//! floating-point association order, same tie-breaks — and obtain
//! bit-identical routes and totals.
//!
//! The pipelines in [`crate::algorithms`] call these functions for their
//! own final join, so the engine-equivalence property gates
//! (`crates/bench/tests/*.rs`) transitively pin this module: it *cannot*
//! drift from the engine without breaking them.
//!
//! ## Bit-level contract
//!
//! For the same winning route the reported total is bit-identical no
//! matter which candidate superset it was selected from, because every
//! objective folds distances along the route only:
//!
//! * [`RouteObjective::Chain`]: `k = 2` pairs fold
//!   `dis(p,s) + dis(s,r)` left-to-right ([`tnn_join_with`]); `k ≥ 3`
//!   chains fold backwards through the DP suffix costs
//!   ([`chain_join_with`]).
//! * [`RouteObjective::OrderFree`]: the winner is selected on the joins'
//!   totals (earlier visit orders win ties), then the reported total is
//!   re-derived as the forward fold over the stops — exactly the
//!   pipeline's `route_length`.
//! * [`RouteObjective::RoundTrip`]: `k = 2` tours fold
//!   `(dis(p,s) + dis(s,r)) + dis(r,p)` ([`round_trip_join`] — *not* the
//!   DP association); `k ≥ 3` tours use the closed-tour DP
//!   ([`chain_loop_join_with`]).
//!
//! Candidate-*order* dependence is confined to exact-tie breaking
//! (identical `(total, index)` keys), which cannot occur for
//! general-position inputs.

use crate::algorithms::permutations;
use crate::join::{chain_join_with, chain_loop_join_with, tnn_join_with, JoinScratch};
use crate::round_trip_join;
use tnn_geom::Point;
use tnn_rtree::ObjectId;

/// Which route objective a candidate merge minimizes — the join-stage
/// counterpart of [`crate::QueryKind`] (all four TNN algorithms share
/// the `Chain` objective; they differ only in how the candidate window
/// was estimated).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RouteObjective {
    /// Open route `p → s₁ → … → s_k` visiting the layers in order
    /// ([`crate::QueryKind::Tnn`] and [`crate::QueryKind::Chain`]).
    Chain,
    /// Open route over the best of all `k!` layer visit orders
    /// ([`crate::QueryKind::OrderFree`]).
    OrderFree,
    /// Closed tour returning to `p` ([`crate::QueryKind::RoundTrip`]).
    RoundTrip,
}

/// A merged route: one stop per layer tagged with its layer index, in
/// visit order, plus the objective value realized by those stops.
#[derive(Debug, Clone, PartialEq)]
pub struct MergedRoute {
    /// `(point, object, layer)` stops in visit order. `Chain` and
    /// `RoundTrip` visit layers in index order; `OrderFree` reports the
    /// winning order.
    pub stops: Vec<(Point, ObjectId, usize)>,
    /// The objective value of `stops` (for `RoundTrip` including the
    /// return leg to `p`).
    pub total_dist: f64,
}

/// Merges per-layer candidate lists into the minimum-objective route —
/// the engine's own join stage over caller-gathered candidates.
///
/// Returns `None` when any layer is empty (no feasible route). Layers
/// are anything slice-like, so shard gatherers can pass owned
/// concatenation buffers and the pipelines their borrowed window hit
/// lists alike.
///
/// `orders` optionally supplies the visit-order table for
/// `OrderFree` at `k ≥ 3` (all permutations of `0..k`, lexicographic,
/// identity first — [`crate::QueryScratch`] caches exactly this); pass
/// `None` to have it computed on the fly.
pub fn merge_route_layers<L: AsRef<[(Point, ObjectId)]>>(
    join: &mut JoinScratch,
    objective: RouteObjective,
    p: Point,
    layers: &[L],
    orders: Option<&[Vec<usize>]>,
) -> Option<MergedRoute> {
    let k = layers.len();
    if k == 0 || layers.iter().any(|l| l.as_ref().is_empty()) {
        return None;
    }
    match objective {
        RouteObjective::Chain => {
            if k == 2 {
                let pair = tnn_join_with(join, p, layers[0].as_ref(), layers[1].as_ref())?;
                Some(MergedRoute {
                    stops: vec![(pair.s.0, pair.s.1, 0), (pair.r.0, pair.r.1, 1)],
                    total_dist: pair.dist,
                })
            } else {
                let (path, total) = chain_join_with(join, p, layers)?;
                Some(MergedRoute {
                    stops: tag_in_layer_order(path),
                    total_dist: total,
                })
            }
        }
        RouteObjective::OrderFree => {
            let stops = order_free_merge(join, p, layers, orders)?;
            let total_dist = route_length(p, &stops);
            Some(MergedRoute { stops, total_dist })
        }
        RouteObjective::RoundTrip => {
            if k == 2 {
                let pair = round_trip_join(p, layers[0].as_ref(), layers[1].as_ref())?;
                Some(MergedRoute {
                    stops: vec![(pair.s.0, pair.s.1, 0), (pair.r.0, pair.r.1, 1)],
                    total_dist: pair.dist,
                })
            } else {
                let (path, total) = chain_loop_join_with(join, p, layers)?;
                Some(MergedRoute {
                    stops: tag_in_layer_order(path),
                    total_dist: total,
                })
            }
        }
    }
}

/// The best order-free candidate so far: total, layer-ordered stops,
/// and the visit order that produced them.
type BestOrder<'a> = (f64, Vec<(Point, ObjectId)>, &'a [usize]);

/// Minimum-length route over all visit orders: for two layers the
/// bound-pruned pairwise join runs in both directions (the backward
/// direction wins only when *strictly* smaller — bit-identical to the
/// original two-channel variant); beyond that every permutation goes
/// through the layered sweep join and earlier (lexicographic) orders
/// win ties. Returns the stops in visit order.
fn order_free_merge<L: AsRef<[(Point, ObjectId)]>>(
    join: &mut JoinScratch,
    p: Point,
    layers: &[L],
    orders: Option<&[Vec<usize>]>,
) -> Option<Vec<(Point, ObjectId, usize)>> {
    let k = layers.len();
    if k == 2 {
        let forward = tnn_join_with(join, p, layers[0].as_ref(), layers[1].as_ref());
        let backward = tnn_join_with(join, p, layers[1].as_ref(), layers[0].as_ref());
        let (pair, reversed) = match (forward, backward) {
            (Some(f), Some(b)) if b.dist < f.dist => (b, true),
            (Some(f), _) => (f, false),
            (None, Some(b)) => (b, true),
            (None, None) => return None,
        };
        return Some(if reversed {
            vec![(pair.s.0, pair.s.1, 1), (pair.r.0, pair.r.1, 0)]
        } else {
            vec![(pair.s.0, pair.s.1, 0), (pair.r.0, pair.r.1, 1)]
        });
    }
    let computed;
    let orders: &[Vec<usize>] = match orders {
        Some(orders) => orders,
        None => {
            computed = permutations(k);
            &computed
        }
    };
    let mut best: Option<BestOrder<'_>> = None;
    let mut ordered: Vec<&[(Point, ObjectId)]> = Vec::with_capacity(k);
    for order in orders {
        ordered.clear();
        ordered.extend(order.iter().map(|&i| layers[i].as_ref()));
        if let Some((path, total)) = chain_join_with(join, p, &ordered) {
            if best.as_ref().is_none_or(|(b, _, _)| total < *b) {
                best = Some((total, path, order));
            }
        }
    }
    let (_, path, order) = best?;
    Some(
        path.into_iter()
            .zip(order)
            .map(|((pt, object), &layer)| (pt, object, layer))
            .collect(),
    )
}

/// Tags a layer-ordered path with its layer indices.
fn tag_in_layer_order(path: Vec<(Point, ObjectId)>) -> Vec<(Point, ObjectId, usize)> {
    path.into_iter()
        .enumerate()
        .map(|(layer, (pt, object))| (pt, object, layer))
        .collect()
}

/// Length of the one-way route `p → stops[0] → … → stops[last]` — the
/// forward fold every order-free total is reported in.
pub(crate) fn route_length(p: Point, stops: &[(Point, ObjectId, usize)]) -> f64 {
    let mut total = 0.0;
    let mut prev = p;
    for &(pt, _, _) in stops {
        total += prev.dist(pt);
        prev = pt;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer(coords: &[(f64, f64)], salt: u32) -> Vec<(Point, ObjectId)> {
        coords
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| (Point::new(x, y), ObjectId(salt * 100 + i as u32)))
            .collect()
    }

    fn clouds(k: usize, n: usize) -> Vec<Vec<(Point, ObjectId)>> {
        (0..k)
            .map(|c| {
                (0..n)
                    .map(|i| {
                        (
                            Point::new(
                                ((i * 37 + c * 13 + 7) % 211) as f64 + 0.25 * c as f64,
                                ((i * 53 + c * 29 + 3) % 223) as f64 + 0.125 * i as f64,
                            ),
                            ObjectId(i as u32),
                        )
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn empty_layer_merges_to_none() {
        let mut join = JoinScratch::default();
        let a = layer(&[(1.0, 1.0)], 0);
        for objective in [
            RouteObjective::Chain,
            RouteObjective::OrderFree,
            RouteObjective::RoundTrip,
        ] {
            assert!(merge_route_layers(
                &mut join,
                objective,
                Point::ORIGIN,
                &[a.clone(), vec![]],
                None
            )
            .is_none());
            assert!(merge_route_layers::<Vec<(Point, ObjectId)>>(
                &mut join,
                objective,
                Point::ORIGIN,
                &[],
                None
            )
            .is_none());
        }
    }

    #[test]
    fn chain_merge_matches_brute_force_and_folds() {
        let mut join = JoinScratch::default();
        for k in [2usize, 3, 4] {
            let layers = clouds(k, 40);
            let p = Point::new(77.0, 99.0);
            let got = merge_route_layers(&mut join, RouteObjective::Chain, p, &layers, None)
                .expect("non-empty layers");
            assert_eq!(got.stops.len(), k);
            assert_eq!(
                got.stops.iter().map(|s| s.2).collect::<Vec<_>>(),
                (0..k).collect::<Vec<_>>()
            );
            // Exhaustive check at k = 2 (larger k covered by the join's
            // own brute-force tests).
            if k == 2 {
                let mut best = f64::INFINITY;
                for &(s, _) in &layers[0] {
                    for &(r, _) in &layers[1] {
                        best = best.min(p.dist(s) + s.dist(r));
                    }
                }
                assert!((got.total_dist - best).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn order_free_total_is_the_forward_fold_over_its_stops() {
        let mut join = JoinScratch::default();
        for k in [2usize, 3, 4] {
            let layers = clouds(k, 25);
            let p = Point::new(10.0, 200.0);
            let got = merge_route_layers(&mut join, RouteObjective::OrderFree, p, &layers, None)
                .expect("non-empty layers");
            assert_eq!(
                got.total_dist.to_bits(),
                route_length(p, &got.stops).to_bits()
            );
            let mut visited: Vec<usize> = got.stops.iter().map(|s| s.2).collect();
            visited.sort_unstable();
            assert_eq!(visited, (0..k).collect::<Vec<_>>());
        }
    }

    #[test]
    fn order_free_cached_orders_match_on_the_fly_orders() {
        let mut join = JoinScratch::default();
        let layers = clouds(3, 30);
        let p = Point::new(150.0, 40.0);
        let cached = permutations(3);
        let with_cache = merge_route_layers(
            &mut join,
            RouteObjective::OrderFree,
            p,
            &layers,
            Some(&cached),
        )
        .unwrap();
        let without =
            merge_route_layers(&mut join, RouteObjective::OrderFree, p, &layers, None).unwrap();
        assert_eq!(with_cache, without);
    }

    #[test]
    fn round_trip_merge_closes_the_tour() {
        let mut join = JoinScratch::default();
        for k in [2usize, 3] {
            let layers = clouds(k, 20);
            let p = Point::new(120.0, 120.0);
            let got = merge_route_layers(&mut join, RouteObjective::RoundTrip, p, &layers, None)
                .expect("non-empty layers");
            let one_way = route_length(p, &got.stops);
            let back = got.stops.last().unwrap().0.dist(p);
            assert!((one_way + back - got.total_dist).abs() < 1e-9);
        }
    }

    #[test]
    fn merge_over_a_superset_returns_the_same_route() {
        // The shard contract in miniature: merging a superset that still
        // contains the optimum yields the identical stops and bits.
        let mut join = JoinScratch::default();
        let p = Point::new(50.0, 50.0);
        for objective in [
            RouteObjective::Chain,
            RouteObjective::OrderFree,
            RouteObjective::RoundTrip,
        ] {
            for k in [2usize, 3] {
                let full = clouds(k, 60);
                let small: Vec<Vec<(Point, ObjectId)>> = full
                    .iter()
                    .map(|l| {
                        let mut l: Vec<_> = l.clone();
                        l.sort_by(|a, b| p.dist_sq(a.0).total_cmp(&p.dist_sq(b.0)));
                        l.truncate(45);
                        l
                    })
                    .collect();
                let a = merge_route_layers(&mut join, objective, p, &full, None).unwrap();
                let b = merge_route_layers(&mut join, objective, p, &small, None).unwrap();
                if b.total_dist == a.total_dist {
                    assert_eq!(a.stops, b.stops, "{objective:?} k={k}");
                    assert_eq!(a.total_dist.to_bits(), b.total_dist.to_bits());
                }
            }
        }
    }
}
