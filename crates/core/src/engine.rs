//! The unified query surface: [`QueryEngine`], builder-style [`Query`]
//! requests, and the [`QueryOutcome`] they all return.
//!
//! The engine treats the channel count `k` as a first-class parameter:
//! every query kind — the four TNN algorithms, chained, order-free, and
//! round-trip routes — runs over any `k ≥ 2`-channel environment, with
//! the paper's two-channel pipeline reproduced bit-for-bit at `k = 2`:
//!
//! ```
//! use std::sync::Arc;
//! use tnn_core::{Algorithm, AnnMode, Query, QueryEngine};
//! use tnn_broadcast::{BroadcastParams, MultiChannelEnv};
//! use tnn_geom::Point;
//! use tnn_rtree::{PackingAlgorithm, RTree};
//!
//! let params = BroadcastParams::new(64);
//! let pts: Vec<Point> =
//!     (0..60).map(|i| Point::new((i * 7 % 53) as f64, (i * 11 % 59) as f64)).collect();
//! let tree = |seed: usize| {
//!     let shifted: Vec<Point> =
//!         pts.iter().map(|p| Point::new(p.x + seed as f64, p.y)).collect();
//!     Arc::new(RTree::build(&shifted, params.rtree_params(), PackingAlgorithm::Str).unwrap())
//! };
//! let env = MultiChannelEnv::new(vec![tree(0), tree(1)], params, &[17, 42]);
//!
//! let engine = QueryEngine::new(env);
//! let outcome = engine
//!     .run(&Query::tnn(Point::new(25.0, 25.0)).algorithm(Algorithm::HybridNn))
//!     .unwrap();
//! assert_eq!(outcome.route.len(), 2);
//! # let _ = AnnMode::Exact;
//! ```
//!
//! The engine wraps a [`MultiChannelEnv`] whose internals are shared
//! behind an `Arc`, so cloning the engine (or the environment) is O(1)
//! and handles can be spread across worker threads or a future async
//! executor. Per-query phase randomization threads a
//! [`PhaseOverlay`](tnn_broadcast::PhaseOverlay) into the query tasks
//! instead of materializing a re-phased environment, and pooled
//! [`QueryScratch`] buffers make the casual [`QueryEngine::run`] path
//! allocation-light while [`QueryEngine::run_with`] stays zero-alloc for
//! batch runners that own one scratch per worker.

use crate::algorithms::{
    order_free_tnn_overlay, round_trip_tnn_overlay, run_query_overlay, QueryScratch, VariantRun,
    VisitOrder,
};
use crate::task::queue::{ArrivalHeap, CandidateQueue};
use crate::{Algorithm, AnnMode, AnnSpec, ChannelCost, TnnConfig, TnnError, TnnPair, TnnRun};
use serde::{Deserialize, Serialize};
use std::sync::{Arc, Mutex, RwLock};
use tnn_broadcast::{MultiChannelEnv, PhaseOverlay, PhaseVec};
use tnn_geom::Point;
use tnn_rtree::ObjectId;

/// What kind of route a [`Query`] asks for. Every kind runs over any
/// `k ≥ 2`-channel environment; `k = 2` is the paper's special case.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueryKind {
    /// TNN in channel order (`p → s₁ → … → s_k`) under the given
    /// algorithm.
    Tnn(Algorithm),
    /// Chained TNN over all `k` channels in channel order (the paper's
    /// future-work item 1) — an alias for the generalized
    /// [`Algorithm::DoubleNn`] pipeline, kept as its own kind because the
    /// chained workloads of the evaluation are configured by channel
    /// count, not algorithm.
    Chain,
    /// Order-free TNN: the shortest route visiting every channel's
    /// dataset in *any* order (future-work item 2).
    OrderFree,
    /// Round-trip TNN: the shortest closed tour
    /// `p → s₁ → … → s_k → p` in channel order (future-work item 3).
    RoundTrip,
}

/// A builder-style query request: what to compute, from where, when, and
/// under which per-channel knobs.
///
/// Construct with [`Query::tnn`] / [`Query::chain`] /
/// [`Query::order_free`] / [`Query::round_trip`], refine with the
/// builder methods, then hand to [`QueryEngine::run`]. Defaults: Hybrid-NN
/// for plain TNN, exact (eNN) search on every channel, issue slot 0, the
/// environment's own channel phases, and final answer-object retrieval
/// on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Query {
    kind: QueryKind,
    point: Point,
    issued_at: u64,
    ann: AnnSpec,
    phases: Option<PhaseVec>,
    retrieve_answer_objects: bool,
}

impl Query {
    fn new(kind: QueryKind, point: Point) -> Self {
        Query {
            kind,
            point,
            issued_at: 0,
            ann: AnnSpec::default(),
            phases: None,
            retrieve_answer_objects: true,
        }
    }

    /// A plain TNN query from `p` (defaults to [`Algorithm::HybridNn`]).
    pub fn tnn(p: Point) -> Self {
        Query::new(QueryKind::Tnn(Algorithm::HybridNn), p)
    }

    /// A chained TNN query from `p` over every channel in channel order.
    pub fn chain(p: Point) -> Self {
        Query::new(QueryKind::Chain, p)
    }

    /// An order-free TNN query from `p`.
    pub fn order_free(p: Point) -> Self {
        Query::new(QueryKind::OrderFree, p)
    }

    /// A round-trip TNN query from `p`.
    pub fn round_trip(p: Point) -> Self {
        Query::new(QueryKind::RoundTrip, p)
    }

    /// Selects the TNN algorithm (only meaningful for [`Query::tnn`]
    /// requests; the extensions have a single pipeline each).
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        if let QueryKind::Tnn(_) = self.kind {
            self.kind = QueryKind::Tnn(algorithm);
        }
        self
    }

    /// The global slot at which the client receives the query.
    pub fn issued_at(mut self, slot: u64) -> Self {
        self.issued_at = slot;
        self
    }

    /// One ANN pruning mode for every channel.
    pub fn ann(mut self, mode: AnnMode) -> Self {
        self.ann = AnnSpec::Uniform(mode);
        self
    }

    /// Explicit per-channel ANN pruning modes, in channel order; the
    /// length is checked against the engine's channel count at execution
    /// time (panicking on mismatch, like [`MultiChannelEnv::new`] does
    /// for phases).
    ///
    /// # Panics
    /// Panics on an empty slice.
    pub fn ann_modes(mut self, modes: &[AnnMode]) -> Self {
        assert!(!modes.is_empty(), "at least one ANN mode is required");
        self.ann = AnnSpec::PerChannel(crate::AnnModes::from_slice(modes));
        self
    }

    /// Per-query channel phases, substituted for the environment's
    /// without cloning it (checked against the channel count at execution
    /// time; inline storage up to four channels).
    pub fn phases(mut self, phases: &[u64]) -> Self {
        self.phases = Some(PhaseVec::from_slice(phases));
        self
    }

    /// Whether the client finally downloads the answer objects' data
    /// pages (the paper's cost model; default `true`).
    pub fn retrieve_answer_objects(mut self, retrieve: bool) -> Self {
        self.retrieve_answer_objects = retrieve;
        self
    }

    /// The query's kind.
    pub fn kind(&self) -> QueryKind {
        self.kind
    }

    /// The query point.
    pub fn point(&self) -> Point {
        self.point
    }

    /// The slot at which the client receives the query (see
    /// [`Query::issued_at`]).
    pub fn issue_slot(&self) -> u64 {
        self.issued_at
    }

    /// The per-channel ANN specification the query carries (see
    /// [`Query::ann`] / [`Query::ann_modes`]).
    pub fn ann_spec(&self) -> &AnnSpec {
        &self.ann
    }

    /// The per-query phase substitution, if any (see [`Query::phases`]).
    pub fn phase_overrides(&self) -> Option<&[u64]> {
        self.phases.as_deref()
    }

    /// Whether the client finally downloads the answer objects' data
    /// pages (see [`Query::retrieve_answer_objects`]).
    pub fn retrieves_answer_objects(&self) -> bool {
        self.retrieve_answer_objects
    }

    /// Runs the same per-channel arity checks [`QueryEngine::run_with`]
    /// performs, eagerly. Serving front-ends call this at admission time
    /// so a malformed query panics on the *submitting* thread instead of
    /// poisoning a worker that picks the job up later.
    ///
    /// # Panics
    /// Panics when per-channel phases or ANN modes do not match the
    /// `k`-channel environment (the same conditions under which
    /// [`QueryEngine::run`] panics).
    pub fn check_channels(&self, k: usize) {
        if let Some(phases) = &self.phases {
            assert_eq!(
                phases.len(),
                k,
                "one phase per channel is required (got {} for {k} channels)",
                phases.len()
            );
        }
        // Degenerate k < 2 environments are a *recoverable* error
        // (`TnnError::WrongChannelCount`) in the pipeline, which wins
        // over the ANN arity panic — mirror that precedence here.
        if k >= 2 {
            self.ann.check_channels(k);
        }
    }
}

/// One stop of a [`QueryOutcome`] route: where, which object, and on
/// which channel it was found.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RouteStop {
    /// The stop's location.
    pub point: Point,
    /// The object at the stop.
    pub object: ObjectId,
    /// The channel (= dataset) index the object came from.
    pub channel: usize,
}

/// The unified result of any engine query — subsumes the pipeline-level
/// [`TnnRun`] and [`VariantRun`] shapes, with per-hop channel costs.
///
/// Converting a pipeline result into a `QueryOutcome` (via `From`) is
/// lossless for every metric the evaluation uses; the equivalence gate in
/// `crates/bench/tests` asserts the engine's two-channel outcomes are
/// byte-identical to a frozen copy of the paper's pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryOutcome {
    /// What was asked.
    pub kind: QueryKind,
    /// The route stops in visit order (one per channel); empty when the
    /// query failed (possible only for [`Algorithm::ApproximateTnn`]).
    pub route: Vec<RouteStop>,
    /// Total route length: transitive distance for TNN/chain/order-free,
    /// full loop length for round-trip. `None` when the query failed.
    pub total_dist: Option<f64>,
    /// The filter-phase search radius.
    pub search_radius: f64,
    /// Slot at which the query was issued.
    pub issued_at: u64,
    /// Slot at which the estimate phase finished, when the pipeline
    /// records it (TNN and chained queries; the variants fold it into
    /// the per-channel finish times).
    pub estimate_end: Option<u64>,
    /// Slot at which the whole query finished.
    pub completed_at: u64,
    /// Filter-phase candidate counts per channel (recorded by the TNN
    /// and chained pipelines; empty otherwise).
    pub candidates: Vec<usize>,
    /// Per-channel cost breakdown, in channel order — each route hop's
    /// channel indexes into this.
    pub channels: Vec<ChannelCost>,
    /// `true` when a serving front-end answered via a degradation
    /// fallback (the approximate algorithm or a replica path) after its
    /// retry ladder gave up on the primary channels. The engine itself
    /// always produces full-fidelity outcomes (`degraded = false`);
    /// degraded outcomes are never stored in a result cache, because
    /// their bytes are not what a full-fidelity run of the same
    /// [`crate::QueryKey`] would return.
    pub degraded: bool,
}

impl QueryOutcome {
    /// **Access time** (paper metric): elapsed slots from issue to
    /// completion.
    pub fn access_time(&self) -> u64 {
        self.completed_at - self.issued_at
    }

    /// **Tune-in time** (paper metric): total pages downloaded over all
    /// channels.
    pub fn tune_in(&self) -> u64 {
        self.channels.iter().map(|c| c.total_pages()).sum()
    }

    /// Tune-in time of the estimate phase only.
    pub fn tune_in_estimate(&self) -> u64 {
        self.channels.iter().map(|c| c.estimate_pages).sum()
    }

    /// Tune-in time of the filter phase only.
    pub fn tune_in_filter(&self) -> u64 {
        self.channels.iter().map(|c| c.filter_pages).sum()
    }

    /// Peak client-queue occupancy (live queue + delayed-pruning parked
    /// list, max over channels) — the paper's `(H−1)(M−1)`-bounded
    /// client-memory metric of §4.2.4. Zero for Approximate-TNN, which
    /// runs no estimate searches.
    pub fn peak_queue(&self) -> u64 {
        self.channels
            .iter()
            .map(|c| c.peak_queue)
            .max()
            .unwrap_or(0)
    }

    /// Total delayed-pruning hits across channels: condemned entries
    /// the estimate searches parked instead of expanding (§4.2.4).
    pub fn prune_hits(&self) -> u64 {
        self.channels.iter().map(|c| c.prune_hits).sum()
    }

    /// Index nodes visited ≙ index pages downloaded by the estimate and
    /// filter searches (in the broadcast cost model every visited node
    /// is one downloaded page; answer retrieval reads data pages, which
    /// [`QueryOutcome::tune_in`] adds on top).
    pub fn node_visits(&self) -> u64 {
        self.tune_in_estimate() + self.tune_in_filter()
    }

    /// `true` when no route was found.
    pub fn failed(&self) -> bool {
        self.route.is_empty()
    }

    /// Total filter-phase candidates over all channels.
    pub fn total_candidates(&self) -> usize {
        self.candidates.iter().sum()
    }

    /// The answer as a two-channel [`TnnPair`] — **plain TNN outcomes only**,
    /// `None` otherwise. Variant routes do not fit `TnnPair`'s field
    /// contract (an order-free route may visit the `R` channel first,
    /// and a round-trip `total_dist` includes the return leg), so they
    /// must be read through [`QueryOutcome::route`] /
    /// [`QueryOutcome::total_dist`] instead.
    pub fn tnn_pair(&self) -> Option<TnnPair> {
        if !matches!(self.kind, QueryKind::Tnn(_)) {
            return None;
        }
        match self.route.as_slice() {
            [first, second] => Some(TnnPair {
                s: (first.point, first.object),
                r: (second.point, second.object),
                dist: self.total_dist?,
            }),
            _ => None,
        }
    }

    /// Which dataset the route visits first (meaningful for order-free
    /// queries; `None` when the query failed).
    pub fn visit_order(&self) -> Option<VisitOrder> {
        self.route.first().map(|stop| {
            if stop.channel == 0 {
                VisitOrder::SFirst
            } else {
                VisitOrder::RFirst
            }
        })
    }
}

impl From<TnnRun> for QueryOutcome {
    fn from(run: TnnRun) -> Self {
        QueryOutcome {
            // The algorithm is not recorded in a TnnRun; Hybrid-NN is the
            // default request kind. Engine-produced outcomes overwrite
            // this with the actual request kind.
            kind: QueryKind::Tnn(Algorithm::HybridNn),
            route: run
                .route
                .into_iter()
                .enumerate()
                .map(|(channel, (point, object))| RouteStop {
                    point,
                    object,
                    channel,
                })
                .collect(),
            total_dist: run.total_dist,
            search_radius: run.search_radius,
            issued_at: run.issued_at,
            estimate_end: Some(run.estimate_end),
            completed_at: run.completed_at,
            candidates: run.candidates,
            channels: run.channels,
            degraded: false,
        }
    }
}

impl From<VariantRun> for QueryOutcome {
    fn from(run: VariantRun) -> Self {
        QueryOutcome {
            // A VariantRun does not record which variant produced it;
            // order-free is the kind that exposes both stop orders.
            // Engine-produced outcomes overwrite this with the actual
            // request kind.
            kind: QueryKind::OrderFree,
            route: run
                .stops
                .into_iter()
                .map(|(point, object, channel)| RouteStop {
                    point,
                    object,
                    channel,
                })
                .collect(),
            total_dist: Some(run.total_dist),
            search_radius: run.search_radius,
            issued_at: run.issued_at,
            estimate_end: None,
            completed_at: run.completed_at,
            candidates: Vec::new(),
            channels: run.channels,
            degraded: false,
        }
    }
}

/// Upper bound on pooled scratches — enough for one per hardware thread
/// on large machines while bounding idle memory.
const MAX_POOLED_SCRATCH: usize = 64;

/// The unified query-execution engine over one shared multi-channel
/// environment, generic over the candidate-queue backend (the default
/// [`ArrivalHeap`] is the production backend; benchmarks instantiate the
/// paper-literal linear reference through
/// [`QueryEngine::with_queue_backend`]).
///
/// See [`Query`] for an end-to-end example. Cloning an engine is O(1)
/// and shares the environment cell: clones (worker handles) observe
/// every [`QueryEngine::swap_env`] the moment it lands. Each clone
/// starts an empty scratch pool.
///
/// # Mutable environments
///
/// The engine holds the **current** environment snapshot behind a cell;
/// [`QueryEngine::swap_env`] publishes the next epoch while in-flight
/// queries keep running on the snapshot they took at dispatch (an
/// environment clone is O(1), so the read path stays cheap). The channel
/// count is fixed at construction — swaps must preserve it, mirroring
/// how every admitted query was validated against it.
#[derive(Debug)]
pub struct QueryEngine<Q: CandidateQueue = ArrivalHeap> {
    /// The current environment snapshot, shared across engine clones.
    /// Readers clone it out (O(1)) and never hold the guard across a
    /// query; `swap_env` is the only writer.
    env: Arc<RwLock<MultiChannelEnv>>,
    /// Channel count, fixed at construction and invariant under swaps —
    /// reading it never takes the env lock.
    channels: usize,
    /// Recycled per-query buffers for the pooling [`QueryEngine::run`]
    /// path. `run_with` never touches this.
    pool: Mutex<Vec<QueryScratch<Q>>>,
}

impl QueryEngine {
    /// An engine over `env` with the production heap-ordered queue
    /// backend.
    pub fn new(env: MultiChannelEnv) -> Self {
        QueryEngine::with_queue_backend(env)
    }
}

impl<Q: CandidateQueue> QueryEngine<Q> {
    /// An engine over `env` with an explicit candidate-queue backend
    /// (A/B benchmarking; everyday code wants [`QueryEngine::new`]).
    pub fn with_queue_backend(env: MultiChannelEnv) -> Self {
        let channels = env.len();
        QueryEngine {
            env: Arc::new(RwLock::new(env)),
            channels,
            pool: Mutex::new(Vec::new()),
        }
    }

    /// The current environment snapshot — an O(1) clone out of the
    /// shared cell. The snapshot is immutable and stays consistent in
    /// the caller's hands even while a concurrent
    /// [`QueryEngine::swap_env`] publishes the next epoch.
    pub fn env(&self) -> MultiChannelEnv {
        self.env.read().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Number of broadcast channels — fixed at construction, invariant
    /// under [`QueryEngine::swap_env`], and readable without touching
    /// the environment cell.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Publishes `env` as the engine's next environment snapshot. Every
    /// engine clone (worker handles included) observes the swap on its
    /// next dispatch; queries already executing finish on the snapshot
    /// they started with. Callers advance epochs via
    /// [`MultiChannelEnv::advance`] / [`MultiChannelEnv::advance_channel`]
    /// so downstream caches see the identity change.
    ///
    /// # Errors
    /// [`TnnError::WrongChannelCount`] when `env`'s channel count
    /// differs from the engine's — admitted queries were validated
    /// against the original count, so a swap may change *data*, never
    /// *shape*.
    pub fn swap_env(&self, env: MultiChannelEnv) -> Result<(), TnnError> {
        if env.len() != self.channels {
            return Err(TnnError::WrongChannelCount {
                needed: self.channels,
                available: env.len(),
            });
        }
        *self.env.write().unwrap_or_else(|e| e.into_inner()) = env;
        Ok(())
    }

    /// Executes `query`, drawing a pooled [`QueryScratch`] (grown by
    /// earlier queries) and returning it afterwards. Worker loops that
    /// own a scratch should prefer [`QueryEngine::run_with`], which skips
    /// the pool lock entirely.
    ///
    /// # Errors
    /// [`TnnError::WrongChannelCount`] for environments with fewer than
    /// two channels (every query kind runs over any `k ≥ 2`);
    /// [`TnnError::NonFiniteQuery`] for NaN/infinite query points;
    /// [`TnnError::EmptyChannel`] when a channel broadcasts an empty
    /// dataset.
    ///
    /// # Panics
    /// Panics when per-channel phases or ANN modes in the query do not
    /// match the channel count.
    pub fn run(&self, query: &Query) -> Result<QueryOutcome, TnnError> {
        let mut scratch = self.scratch();
        let outcome = self.run_with(query, &mut scratch);
        self.recycle(scratch);
        outcome
    }

    /// [`QueryEngine::run`] with a caller-owned scratch — the zero-alloc
    /// hot path for batch runners holding one [`QueryScratch`] per worker
    /// thread. Takes the engine's current environment snapshot; callers
    /// that must pin a specific snapshot across several runs (serving
    /// workers keying a cache) use [`QueryEngine::run_on`].
    ///
    /// # Errors
    /// As [`QueryEngine::run`].
    ///
    /// # Panics
    /// As [`QueryEngine::run`].
    pub fn run_with(
        &self,
        query: &Query,
        scratch: &mut QueryScratch<Q>,
    ) -> Result<QueryOutcome, TnnError> {
        let env = self.env();
        self.run_on(&env, query, scratch)
    }

    /// [`QueryEngine::run_with`] against an explicit environment
    /// snapshot — the epoch-consistent path for serving workers: take
    /// one snapshot, derive the cache key from it, and execute on it,
    /// so a concurrent [`QueryEngine::swap_env`] can never wedge an
    /// answer from one epoch under a key from another.
    ///
    /// # Errors
    /// As [`QueryEngine::run`].
    ///
    /// # Panics
    /// As [`QueryEngine::run`].
    pub fn run_on(
        &self,
        env: &MultiChannelEnv,
        query: &Query,
        scratch: &mut QueryScratch<Q>,
    ) -> Result<QueryOutcome, TnnError> {
        let overlay = match &query.phases {
            Some(phases) => PhaseOverlay::new(env, phases),
            None => PhaseOverlay::identity(env),
        };
        let mut outcome: QueryOutcome = match query.kind {
            QueryKind::Tnn(_) | QueryKind::Chain => {
                let algorithm = match query.kind {
                    QueryKind::Tnn(algorithm) => algorithm,
                    // Chained TNN is the generalized Double-NN pipeline.
                    _ => Algorithm::DoubleNn,
                };
                let k = overlay.len();
                // The recoverable channel-count error must win over the
                // ANN-count panic: a per-channel mode list that matches
                // the *environment* is not the user's mistake when the
                // query kind itself does not fit the channel count.
                if k < 2 {
                    return Err(TnnError::WrongChannelCount {
                        needed: 2,
                        available: k,
                    });
                }
                query.ann.check_channels(k);
                let cfg = TnnConfig {
                    algorithm,
                    ann: query.ann.modes(k),
                    retrieve_answer_objects: query.retrieve_answer_objects,
                };
                run_query_overlay(&overlay, query.point, query.issued_at, &cfg, scratch)?.into()
            }
            QueryKind::OrderFree => order_free_tnn_overlay(
                &overlay,
                query.point,
                query.issued_at,
                &query.ann,
                query.retrieve_answer_objects,
                scratch,
            )?
            .into(),
            QueryKind::RoundTrip => round_trip_tnn_overlay(
                &overlay,
                query.point,
                query.issued_at,
                &query.ann,
                query.retrieve_answer_objects,
                scratch,
            )?
            .into(),
        };
        outcome.kind = query.kind;
        Ok(outcome)
    }

    /// Draws a [`QueryScratch`] from the engine's pool (or a fresh one
    /// when the pool is empty). Long-lived worker loops — the serving
    /// front-end in `tnn-serve`, the batch runners — take one scratch up
    /// front, drive every query through [`QueryEngine::run_with`], and
    /// [`QueryEngine::recycle`] it on exit, so buffers grown by earlier
    /// queries keep amortizing across workers and server generations.
    pub fn scratch(&self) -> QueryScratch<Q> {
        self.pool
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop()
            .unwrap_or_default()
    }

    /// Returns a scratch drawn with [`QueryEngine::scratch`] to the pool
    /// (dropped silently once the pool cap is reached).
    pub fn recycle(&self, scratch: QueryScratch<Q>) {
        let mut pool = self.pool.lock().unwrap_or_else(|e| e.into_inner());
        if pool.len() < MAX_POOLED_SCRATCH {
            pool.push(scratch);
        }
    }
}

impl<Q: CandidateQueue> Clone for QueryEngine<Q> {
    fn clone(&self) -> Self {
        QueryEngine {
            // Clones share the cell, not just the snapshot: a swap on
            // any handle is observed by all of them.
            env: Arc::clone(&self.env),
            channels: self.channels,
            pool: Mutex::new(Vec::new()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_query_impl, AnnModes};
    use std::sync::Arc;
    use tnn_broadcast::BroadcastParams;
    use tnn_rtree::{PackingAlgorithm, RTree};

    fn cloud(n: usize, salt: usize) -> Vec<Point> {
        (0..n)
            .map(|i| {
                Point::new(
                    ((i + salt) * 37 % 211) as f64,
                    ((i + salt) * 53 % 223) as f64,
                )
            })
            .collect()
    }

    fn build_env(layers: &[Vec<Point>], phases: &[u64]) -> MultiChannelEnv {
        let params = BroadcastParams::new(64);
        let trees = layers
            .iter()
            .map(|pts| {
                Arc::new(RTree::build(pts, params.rtree_params(), PackingAlgorithm::Str).unwrap())
            })
            .collect();
        MultiChannelEnv::new(trees, params, phases)
    }

    fn two_channel() -> MultiChannelEnv {
        build_env(&[cloud(90, 1), cloud(110, 8)], &[13, 31])
    }

    /// The engine is a thin layer over the core pipeline: outcomes must
    /// be byte-identical to a direct `run_query_impl` call.
    #[test]
    fn tnn_matches_core_pipeline_for_every_algorithm() {
        let env = two_channel();
        let engine = QueryEngine::new(env.clone());
        let p = Point::new(77.0, 99.0);
        for alg in Algorithm::ALL {
            let core = run_query_impl(
                &env,
                p,
                5,
                &TnnConfig::exact(alg),
                &mut QueryScratch::<ArrivalHeap>::default(),
            )
            .unwrap();
            let got = engine
                .run(&Query::tnn(p).algorithm(alg).issued_at(5))
                .unwrap();
            let mut expect = QueryOutcome::from(core);
            expect.kind = QueryKind::Tnn(alg);
            assert_eq!(got, expect, "{}", alg.name());
            assert_eq!(got.kind, QueryKind::Tnn(alg));
        }
    }

    #[test]
    fn phases_overlay_matches_rephased_env() {
        let env = two_channel();
        let engine = QueryEngine::new(env.clone());
        let p = Point::new(40.0, 160.0);
        let phases = [4_321u64, 987];
        let rephased = QueryEngine::new(env.with_phases(&phases));
        let expect = rephased
            .run(&Query::tnn(p).algorithm(Algorithm::DoubleNn))
            .unwrap();
        let got = engine
            .run(&Query::tnn(p).algorithm(Algorithm::DoubleNn).phases(&phases))
            .unwrap();
        assert_eq!(got, expect);
    }

    #[test]
    fn tnn_runs_over_three_and_four_channels() {
        for k in [3usize, 4] {
            let layers: Vec<Vec<Point>> = (0..k).map(|i| cloud(60 + 10 * i, 7 * i)).collect();
            let phases: Vec<u64> = (0..k as u64).map(|i| i * 13 + 3).collect();
            let env = build_env(&layers, &phases);
            let engine = QueryEngine::new(env.clone());
            let p = Point::new(150.0, 150.0);
            for alg in Algorithm::ALL {
                let got = engine
                    .run(&Query::tnn(p).algorithm(alg).issued_at(5))
                    .unwrap();
                assert_eq!(got.channels.len(), k, "{}", alg.name());
                assert_eq!(got.candidates.len(), k, "{}", alg.name());
                if alg.is_exact() {
                    assert_eq!(got.route.len(), k, "{}", alg.name());
                    let trees: Vec<&RTree> = env.channels().iter().map(|c| c.tree()).collect();
                    let (_, oracle_total) = crate::exact_chain_tnn(p, &trees);
                    assert!(
                        (got.total_dist.unwrap() - oracle_total).abs() < 1e-9,
                        "{} at k={k}",
                        alg.name()
                    );
                    assert!(got.tnn_pair().is_none(), "k-hop routes are not pairs");
                }
            }
        }
    }

    #[test]
    fn chain_kind_is_generalized_double_nn() {
        let env = build_env(&[cloud(60, 0), cloud(80, 7), cloud(50, 19)], &[3, 17, 91]);
        let engine = QueryEngine::new(env);
        let p = Point::new(150.0, 150.0);
        let chain = engine.run(&Query::chain(p).issued_at(5)).unwrap();
        let tnn = engine
            .run(&Query::tnn(p).algorithm(Algorithm::DoubleNn).issued_at(5))
            .unwrap();
        assert_eq!(chain.kind, QueryKind::Chain);
        let mut relabeled = tnn;
        relabeled.kind = QueryKind::Chain;
        assert_eq!(chain, relabeled);
        assert_eq!(chain.route.len(), 3);
        assert_eq!(chain.channels.len(), 3);
        assert!(chain.estimate_end.is_some());
    }

    #[test]
    fn variants_run_at_two_and_three_channels() {
        for layers in [
            vec![cloud(90, 1), cloud(110, 8)],
            vec![cloud(60, 1), cloud(70, 8), cloud(50, 15)],
        ] {
            let k = layers.len();
            let env = build_env(&layers, &vec![0; k]);
            let engine = QueryEngine::new(env);
            let p = Point::new(111.0, 55.0);
            let free = engine.run(&Query::order_free(p)).unwrap();
            assert_eq!(free.route.len(), k);
            assert!(free.visit_order().is_some());

            let tour = engine.run(&Query::round_trip(p)).unwrap();
            assert_eq!(tour.route.len(), k);
            // A closed tour is never shorter than the best one-way route.
            assert!(tour.total_dist.unwrap() >= free.total_dist.unwrap() - 1e-9);
        }
    }

    #[test]
    fn per_channel_ann_modes_match_core_config() {
        let env = two_channel();
        let engine = QueryEngine::new(env.clone());
        let p = Point::new(60.0, 60.0);
        let modes = [AnnMode::Dynamic { factor: 1.0 }, AnnMode::Exact];
        let core = run_query_impl(
            &env,
            p,
            0,
            &TnnConfig::exact(Algorithm::DoubleNn).with_ann_modes(&modes),
            &mut QueryScratch::<ArrivalHeap>::default(),
        )
        .unwrap();
        let got = engine
            .run(
                &Query::tnn(p)
                    .algorithm(Algorithm::DoubleNn)
                    .ann_modes(&modes),
            )
            .unwrap();
        assert_eq!(got.tnn_pair(), core.answer());
        assert_eq!(got.tune_in(), core.tune_in());
        // The uniform spec materializes to the same modes at any k.
        assert_eq!(
            AnnSpec::Uniform(AnnMode::Exact).modes(3),
            AnnModes::exact(3)
        );
    }

    #[test]
    fn pooled_and_scratch_runs_agree() {
        let env = two_channel();
        let engine = QueryEngine::new(env);
        let query = Query::tnn(Point::new(10.0, 10.0));
        let pooled = engine.run(&query).unwrap();
        let mut scratch = QueryScratch::default();
        let direct = engine.run_with(&query, &mut scratch).unwrap();
        assert_eq!(pooled, direct);
        // A second pooled run reuses the recycled scratch.
        assert_eq!(engine.run(&query).unwrap(), pooled);
    }

    #[test]
    fn engine_clone_shares_environment() {
        let env = two_channel();
        let engine = QueryEngine::new(env);
        let copy = engine.clone();
        assert!(std::ptr::eq(engine.env().channels(), copy.env().channels()));
        let q = Query::round_trip(Point::new(90.0, 90.0));
        assert_eq!(engine.run(&q).unwrap(), copy.run(&q).unwrap());
    }

    #[test]
    fn swap_env_publishes_to_every_clone() {
        let engine = QueryEngine::new(two_channel());
        let copy = engine.clone();
        let q = Query::tnn(Point::new(77.0, 99.0));
        let before = engine.run(&q).unwrap();
        // Swap in an advanced environment with channel 0's dataset moved.
        let env = engine.env();
        let params = *env.channel(0).params();
        let shifted: Vec<Point> = cloud(90, 1)
            .iter()
            .map(|p| Point::new(p.x + 40.0, p.y + 40.0))
            .collect();
        let tree =
            Arc::new(RTree::build(&shifted, params.rtree_params(), PackingAlgorithm::Str).unwrap());
        engine.swap_env(env.advance_channel(0, tree)).unwrap();
        assert_eq!(engine.env().epoch(), 1);
        assert_eq!(copy.env().epoch(), 1, "clones share the cell");
        let after_original = engine.run(&q).unwrap();
        let after_copy = copy.run(&q).unwrap();
        assert_eq!(after_original, after_copy);
        assert_ne!(
            before, after_original,
            "moved dataset must change the answer"
        );
        // A fresh engine over the swapped snapshot agrees byte-for-byte.
        let fresh = QueryEngine::new(engine.env());
        assert_eq!(fresh.run(&q).unwrap(), after_original);
    }

    #[test]
    fn swap_env_rejects_channel_count_changes() {
        let engine = QueryEngine::new(two_channel());
        let three = build_env(&[cloud(20, 0), cloud(20, 3), cloud(20, 6)], &[0, 0, 0]);
        assert_eq!(
            engine.swap_env(three).unwrap_err(),
            TnnError::WrongChannelCount {
                needed: 2,
                available: 3
            }
        );
        assert_eq!(engine.channels(), 2);
        assert_eq!(engine.env().epoch(), 0, "rejected swap changes nothing");
    }

    #[test]
    fn run_on_pins_a_snapshot_across_a_swap() {
        let engine = QueryEngine::new(two_channel());
        let q = Query::tnn(Point::new(40.0, 160.0));
        let pinned = engine.env();
        let before = engine.run(&q).unwrap();
        // Swap to a different dataset; the pinned snapshot still answers
        // like the original environment.
        let params = *pinned.channel(0).params();
        let tree = Arc::new(
            RTree::build(&cloud(33, 5), params.rtree_params(), PackingAlgorithm::Str).unwrap(),
        );
        engine.swap_env(pinned.advance_channel(0, tree)).unwrap();
        let mut scratch = QueryScratch::default();
        let on_pinned = engine.run_on(&pinned, &q, &mut scratch).unwrap();
        assert_eq!(on_pinned, before, "in-flight view stays consistent");
        assert_ne!(engine.run(&q).unwrap(), before);
    }

    #[test]
    fn engine_is_shareable_across_threads() {
        let env = two_channel();
        let engine = QueryEngine::new(env);
        let outcomes: Vec<QueryOutcome> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|i| {
                    let engine = &engine;
                    scope.spawn(move || {
                        engine
                            .run(&Query::tnn(Point::new(10.0 * i as f64, 50.0)))
                            .unwrap()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(outcomes.len(), 4);
        assert!(outcomes.iter().all(|o| !o.failed()));
    }

    #[test]
    fn wrong_channel_counts_error() {
        // Every query kind runs over k ≥ 2 channels; a single channel is
        // rejected with the recoverable error for every kind.
        let env1 = build_env(&[cloud(20, 0)], &[0]);
        let engine = QueryEngine::new(env1);
        let p = Point::ORIGIN;
        for query in [
            Query::tnn(p),
            Query::chain(p),
            Query::order_free(p),
            Query::round_trip(p),
        ] {
            assert!(
                matches!(
                    engine.run(&query),
                    Err(TnnError::WrongChannelCount {
                        needed: 2,
                        available: 1
                    })
                ),
                "{:?}",
                query.kind()
            );
        }
        // Three channels are fine for every kind now.
        let env3 = build_env(&[cloud(20, 0), cloud(20, 3), cloud(20, 6)], &[0, 0, 0]);
        let engine = QueryEngine::new(env3);
        assert!(engine.run(&Query::tnn(p)).is_ok());
        assert!(engine.run(&Query::chain(p)).is_ok());
        assert!(engine.run(&Query::order_free(p)).is_ok());
        assert!(engine.run(&Query::round_trip(p)).is_ok());
        assert!(matches!(
            engine.run(&Query::chain(Point::new(f64::NAN, 0.0)).phases(&[0, 0, 0])),
            Err(TnnError::NonFiniteQuery)
        ));
    }

    #[test]
    fn wrong_kind_errors_before_ann_count_panics() {
        // A per-channel ANN list that matches the *environment* must not
        // panic when the query kind itself does not fit the channel
        // count — the recoverable error wins.
        let env1 = build_env(&[cloud(20, 0)], &[0]);
        let engine = QueryEngine::new(env1);
        let result = engine.run(&Query::tnn(Point::ORIGIN).ann_modes(&[AnnMode::Exact]));
        assert!(matches!(
            result,
            Err(TnnError::WrongChannelCount {
                needed: 2,
                available: 1
            })
        ));
    }

    #[test]
    fn empty_channels_error_through_the_engine() {
        let params = BroadcastParams::new(64);
        let full = Arc::new(
            RTree::build(&cloud(30, 2), params.rtree_params(), PackingAlgorithm::Str).unwrap(),
        );
        let empty = Arc::new(RTree::empty(params.rtree_params()));
        let env = MultiChannelEnv::new(vec![full, empty], params, &[0, 0]);
        let engine = QueryEngine::new(env);
        let p = Point::ORIGIN;
        for query in [
            Query::tnn(p),
            Query::chain(p),
            Query::order_free(p),
            Query::round_trip(p),
        ] {
            assert_eq!(
                engine.run(&query).unwrap_err(),
                TnnError::EmptyChannel { channel: 1 },
                "{:?}",
                query.kind()
            );
        }
    }

    #[test]
    fn delete_to_empty_then_insert_recovers_for_every_algorithm() {
        // The degenerate mutation transitions must surface as recoverable
        // errors, never panics: deleting a channel's last object yields a
        // valid empty tree (queries → EmptyChannel), and inserting into
        // the empty channel makes it queryable again.
        use tnn_rtree::{DeltaOverlay, ObjectId};
        let engine = QueryEngine::new(two_channel());
        let p = Point::new(50.0, 50.0);
        // Delete every object on channel 1 through the overlay.
        let env = engine.env();
        let mut delta = DeltaOverlay::new(Arc::clone(env.channel(1).tree_arc()));
        let ids: Vec<ObjectId> = delta.live_points().iter().map(|&(_, id)| id).collect();
        for id in ids {
            assert!(delta.delete(id));
        }
        let emptied = delta.materialize().unwrap();
        engine
            .swap_env(env.advance_channel(1, Arc::new(emptied)))
            .unwrap();
        let queries = [
            Query::tnn(p).algorithm(Algorithm::DoubleNn),
            Query::tnn(p).algorithm(Algorithm::HybridNn),
            Query::tnn(p).algorithm(Algorithm::WindowBased),
            Query::tnn(p).algorithm(Algorithm::ApproximateTnn),
            Query::chain(p),
            Query::order_free(p),
            Query::round_trip(p),
        ];
        for query in &queries {
            assert_eq!(
                engine.run(query).unwrap_err(),
                TnnError::EmptyChannel { channel: 1 },
                "{:?}",
                query.kind()
            );
        }
        // Insert into the emptied channel and every kind works again.
        let env = engine.env();
        let mut refill = DeltaOverlay::new(Arc::clone(env.channel(1).tree_arc()));
        refill.insert(ObjectId(0), Point::new(55.0, 55.0)).unwrap();
        refill.insert(ObjectId(1), Point::new(60.0, 45.0)).unwrap();
        let refilled = refill.materialize().unwrap();
        engine
            .swap_env(env.advance_channel(1, Arc::new(refilled)))
            .unwrap();
        assert_eq!(engine.env().epoch(), 2);
        for query in &queries {
            let outcome = engine.run(query).unwrap();
            assert!(!outcome.failed(), "{:?}", query.kind());
        }
    }

    #[test]
    #[should_panic(expected = "one phase per channel")]
    fn phase_count_mismatch_panics() {
        let engine = QueryEngine::new(two_channel());
        let _ = engine.run(&Query::tnn(Point::ORIGIN).phases(&[1, 2, 3]));
    }

    #[test]
    #[should_panic(expected = "one ANN mode per channel")]
    fn ann_count_mismatch_panics() {
        let engine = QueryEngine::new(two_channel());
        let _ = engine.run(&Query::tnn(Point::ORIGIN).ann_modes(&[AnnMode::Exact; 3]));
    }

    #[test]
    fn outcome_metrics_match_core_run_accessors() {
        let env = two_channel();
        let engine = QueryEngine::new(env.clone());
        let p = Point::new(33.0, 44.0);
        let core = run_query_impl(
            &env,
            p,
            9,
            &TnnConfig::default(),
            &mut QueryScratch::<ArrivalHeap>::default(),
        )
        .unwrap();
        let got = engine.run(&Query::tnn(p).issued_at(9)).unwrap();
        assert_eq!(got.access_time(), core.access_time());
        assert_eq!(got.tune_in(), core.tune_in());
        assert_eq!(got.tune_in_estimate(), core.tune_in_estimate());
        assert_eq!(got.tune_in_filter(), core.tune_in_filter());
        assert_eq!(
            got.total_candidates(),
            core.candidates[0] + core.candidates[1]
        );
        assert_eq!(got.failed(), core.failed());
        assert_eq!(got.estimate_end, Some(core.estimate_end));
        assert_eq!(got.peak_queue(), core.peak_queue());
        assert_eq!(got.prune_hits(), core.prune_hits());
        assert_eq!(
            got.node_visits(),
            core.tune_in_estimate() + core.tune_in_filter()
        );
    }

    /// The paper's §4.2.4 client-memory bound `(H−1)(M−1)`, observed
    /// end-to-end through the engine outcome: every search-running
    /// algorithm stays within a generous multiple of the per-channel
    /// bound, and Approximate-TNN (no searches) reports zero.
    #[test]
    fn outcome_peak_queue_respects_paper_memory_bound() {
        let env = build_env(&[cloud(900, 3), cloud(800, 11)], &[9, 27]);
        let engine = QueryEngine::new(env.clone());
        let bound = env
            .channels()
            .iter()
            .map(|ch| {
                let h = ch.tree().height() as u64;
                let m = ch.tree().params().fanout as u64;
                4 * (h - 1) * (m - 1) + m + 1
            })
            .max()
            .unwrap();
        for alg in [
            Algorithm::WindowBased,
            Algorithm::DoubleNn,
            Algorithm::HybridNn,
        ] {
            let got = engine
                .run(&Query::tnn(Point::new(120.0, 120.0)).algorithm(alg))
                .unwrap();
            assert!(
                (1..=bound).contains(&got.peak_queue()),
                "{}: peak queue {} vs paper-derived bound {bound}",
                alg.name(),
                got.peak_queue()
            );
        }
        let approx = engine
            .run(&Query::tnn(Point::new(120.0, 120.0)).algorithm(Algorithm::ApproximateTnn))
            .unwrap();
        assert_eq!(approx.peak_queue(), 0, "no estimate searches, no queue");
        assert_eq!(approx.prune_hits(), 0);
    }
}
