//! Search modes: the distance metrics driving a broadcast branch-and-bound
//! search.
//!
//! A standard NN search measures plain Euclidean distance from a query
//! point; the Hybrid-NN case-3 search measures *transitive* distance
//! `dis(p, s) + dis(s, r)` with the endpoint `r` fixed. Both expose the
//! same three bounds, so one task implementation serves both (paper
//! §4.2.1–§4.2.3):
//!
//! | bound | point mode | transitive mode |
//! |---|---|---|
//! | lower (pruning) | `MinDist` | `MinTransDist` |
//! | safe upper (guaranteed by the MBR face property) | `MinMaxDist` | `MinMaxTransDist` |
//! | objective at a point | `dis(q, x)` | `dis(p, x) + dis(x, r)` |
//!
//! The ANN heuristics' search regions differ likewise: a circle around
//! the query point (Heuristic 1) vs. an ellipse with foci `p`, `r`
//! (Heuristic 2).

use serde::{Deserialize, Serialize};
use tnn_geom::{
    circle_rect_overlap_area, ellipse_rect_overlap_area, min_max_trans_dist, min_trans_dist,
    Circle, Ellipse, Point, Rect,
};

/// The metric driving a broadcast branch-and-bound search.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SearchMode {
    /// Plain nearest-neighbor search from a query point.
    Point {
        /// The query point.
        q: Point,
    },
    /// Transitive search (Hybrid-NN case 3): minimize
    /// `dis(p, s) + dis(s, r)` over points `s` of the indexed dataset.
    Transitive {
        /// The original query point.
        p: Point,
        /// The fixed endpoint (`p`'s NN in the other dataset).
        r: Point,
    },
}

impl SearchMode {
    /// The point the search departs from: the query point in point mode,
    /// the source focus `p` in transitive mode. The generalized Hybrid-NN
    /// re-targeting uses this as the fixed endpoint when an upstream hop's
    /// search switches to the transitive metric.
    #[inline]
    pub fn anchor(&self) -> Point {
        match *self {
            SearchMode::Point { q } => q,
            SearchMode::Transitive { p, .. } => p,
        }
    }

    /// Lower bound of the objective over all points inside `mbr`
    /// (`MinDist` / `MinTransDist`); the pruning metric.
    #[inline]
    pub fn lower_bound(&self, mbr: &Rect) -> f64 {
        match *self {
            SearchMode::Point { q } => mbr.min_dist(q),
            SearchMode::Transitive { p, r } => min_trans_dist(p, mbr, r),
        }
    }

    /// Upper bound of the objective guaranteed to be achieved by some
    /// data point inside a non-empty R-tree node bounded by `mbr`
    /// (`MinMaxDist` / `MinMaxTransDist`, by the MBR face property).
    #[inline]
    pub fn safe_upper(&self, mbr: &Rect) -> f64 {
        match *self {
            SearchMode::Point { q } => mbr.min_max_dist(q),
            SearchMode::Transitive { p, r } => min_max_trans_dist(p, mbr, r),
        }
    }

    /// The objective at a concrete data point, as a real distance.
    ///
    /// Convenience wrapper over the objective-space family (the hot path
    /// uses [`SearchMode::objective_at`] directly and converts once via
    /// [`SearchMode::report`]); defined as the composition so the two can
    /// never disagree.
    #[inline]
    pub fn point_objective(&self, x: Point) -> f64 {
        self.report(self.objective_at(x))
    }

    /// The objective at a data point in the mode's **objective space**:
    /// point mode works in squared distances (no square root on the hot
    /// path), transitive mode in plain distance sums. Values from the
    /// `*_objective` family are mutually comparable and convert to real
    /// distances via [`SearchMode::report`].
    #[inline]
    pub fn objective_at(&self, x: Point) -> f64 {
        match *self {
            SearchMode::Point { q } => q.dist_sq(x),
            SearchMode::Transitive { p, r } => p.dist(x) + x.dist(r),
        }
    }

    /// [`SearchMode::lower_bound`] in objective space.
    #[inline]
    pub fn lower_bound_objective(&self, mbr: &Rect) -> f64 {
        match *self {
            SearchMode::Point { q } => mbr.min_dist_sq(q),
            SearchMode::Transitive { p, r } => min_trans_dist(p, mbr, r),
        }
    }

    /// [`SearchMode::safe_upper`] in objective space.
    #[inline]
    pub fn safe_upper_objective(&self, mbr: &Rect) -> f64 {
        match *self {
            SearchMode::Point { q } => mbr.min_max_dist_sq(q),
            SearchMode::Transitive { p, r } => min_max_trans_dist(p, mbr, r),
        }
    }

    /// Converts an objective-space value back to a real distance.
    #[inline]
    pub fn report(&self, v: f64) -> f64 {
        match *self {
            SearchMode::Point { .. } => v.sqrt(),
            SearchMode::Transitive { .. } => v,
        }
    }

    /// Fraction of `mbr`'s area covered by the current search region (the
    /// circle of radius `bound` around the query point, or the ellipse
    /// with foci `p`, `r` and major axis `bound`) — the quantity compared
    /// against `α` by the ANN pruning heuristics (§5.1).
    ///
    /// Degenerate MBRs (zero area) and infinite bounds return 1.0, i.e.
    /// they are never ANN-pruned (conservative).
    pub fn overlap_ratio(&self, mbr: &Rect, bound: f64) -> f64 {
        if !bound.is_finite() {
            return 1.0;
        }
        let area = mbr.area();
        if area <= 0.0 {
            return 1.0;
        }
        let overlap = match *self {
            SearchMode::Point { q } => circle_rect_overlap_area(&Circle::new(q, bound), mbr),
            SearchMode::Transitive { p, r } => {
                ellipse_rect_overlap_area(&Ellipse::new(p, r, bound), mbr)
            }
        };
        (overlap / area).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_mode_bounds() {
        let mode = SearchMode::Point {
            q: Point::new(0.0, 0.0),
        };
        let mbr = Rect::from_coords(3.0, 0.0, 5.0, 2.0);
        assert_eq!(mode.lower_bound(&mbr), 3.0);
        assert!(mode.safe_upper(&mbr) >= mode.lower_bound(&mbr));
        assert_eq!(mode.point_objective(Point::new(3.0, 4.0)), 5.0);
    }

    #[test]
    fn transitive_mode_bounds() {
        let p = Point::new(0.0, 0.0);
        let r = Point::new(10.0, 0.0);
        let mode = SearchMode::Transitive { p, r };
        let mbr = Rect::from_coords(4.0, -1.0, 6.0, 1.0);
        // The straight segment p–r passes through the MBR.
        assert_eq!(mode.lower_bound(&mbr), 10.0);
        assert!(mode.safe_upper(&mbr) >= 10.0);
        assert_eq!(mode.point_objective(Point::new(5.0, 0.0)), 10.0);
    }

    #[test]
    fn overlap_ratio_point_mode() {
        let mode = SearchMode::Point {
            q: Point::new(0.0, 0.0),
        };
        // Unit square in the first quadrant, circle radius 10 → fully covered.
        let mbr = Rect::from_coords(0.0, 0.0, 1.0, 1.0);
        assert!((mode.overlap_ratio(&mbr, 10.0) - 1.0).abs() < 1e-9);
        // Far away circle → zero.
        let far = Rect::from_coords(100.0, 100.0, 101.0, 101.0);
        assert_eq!(mode.overlap_ratio(&far, 1.0), 0.0);
    }

    #[test]
    fn overlap_ratio_transitive_mode() {
        let mode = SearchMode::Transitive {
            p: Point::new(-3.0, 0.0),
            r: Point::new(3.0, 0.0),
        };
        // Ellipse a=5, b=4 comfortably covers a small box at the center.
        let mbr = Rect::from_coords(-1.0, -1.0, 1.0, 1.0);
        assert!((mode.overlap_ratio(&mbr, 10.0) - 1.0).abs() < 1e-9);
        // Empty ellipse (bound below focal distance) overlaps nothing.
        assert_eq!(mode.overlap_ratio(&mbr, 5.0), 0.0);
    }

    #[test]
    fn degenerate_and_infinite_cases_conservative() {
        let mode = SearchMode::Point {
            q: Point::new(0.0, 0.0),
        };
        let degenerate = Rect::from_coords(1.0, 1.0, 1.0, 5.0);
        assert_eq!(mode.overlap_ratio(&degenerate, 0.5), 1.0);
        let mbr = Rect::from_coords(0.0, 0.0, 1.0, 1.0);
        assert_eq!(mode.overlap_ratio(&mbr, f64::INFINITY), 1.0);
    }
}
