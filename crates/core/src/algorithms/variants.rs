//! TNN variants from the paper's future-work list (§7), generalized to
//! `k ≥ 2` channels:
//!
//! * **Order-free TNN** (item 2: "the visiting order of the types of
//!   objects of interest is not specified"): find the shortest route
//!   visiting one object of every dataset in *any* order — for two
//!   channels, the better of `p → s → r` and `p → r → s`.
//! * **Round-trip TNN** (item 3: "a complete travel route, which includes
//!   the route to return to the source point"): minimize the closed tour
//!   `p → s₁ → … → s_k → p` in channel order.
//!
//! Both reuse the Double-NN estimate (parallel NN searches from `p` on
//! every channel) and generalize Theorem 1:
//!
//! * order-free: the winning route's total `T*` is at most the best
//!   feasible chain through the per-channel NNs over all visit orders,
//!   and every member of the optimal route lies within `T*` of `p` (its
//!   prefix legs already cover the distance) — so `circle(p, d)` with
//!   `d = min_σ chain(p, n_{σ(1)}, …, n_{σ(k)})` suffices;
//! * round-trip: for any tour through `x`, the triangle inequality gives
//!   `2·dis(p, x) ≤ tour length`, so `circle(p, d/2)` with `d` the
//!   feasible NN tour suffices.
//!
//! The order-free join evaluates all `k!` visit orders over the candidate
//! sets (each via the layered sweep join), so its local cost grows
//! factorially with the channel count — fine for the broadcast scenarios'
//! `k ≤ 4`, and the paper neglects local computation throughout.

use super::{
    chain_length, check_channels_non_empty, harvest_searches, run_interleaved,
    spawn_parallel_searches, HopStatsVec, QueryScratch, TunerVec,
};
use crate::merge::{merge_route_layers, MergedRoute, RouteObjective};
use crate::task::queue::CandidateQueue;
use crate::task::{WindowQueryTask, WindowScratch};
use crate::{AnnSpec, ChannelCost, TnnError, TnnPair};
use serde::{Deserialize, Serialize};
use tnn_broadcast::{PhaseOverlay, Tuner};
use tnn_geom::{Circle, Point};
use tnn_rtree::ObjectId;

/// Which dataset a two-channel order-free answer visits first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VisitOrder {
    /// `p → s → r` (the plain TNN order).
    SFirst,
    /// `p → r → s` (the reversed order).
    RFirst,
}

/// Outcome of an order-free or round-trip TNN query over `k ≥ 2`
/// channels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VariantRun {
    /// The route stops in **visit order**: `(point, object, channel)`.
    /// Order-free routes may visit channels in any order; round-trip
    /// routes visit them in channel order (the tour closes back at `p`).
    pub stops: Vec<(Point, ObjectId, usize)>,
    /// Total length of the route (one-way for order-free, full tour for
    /// round-trip).
    pub total_dist: f64,
    /// Filter radius used.
    pub search_radius: f64,
    /// Slot at which the query was issued.
    pub issued_at: u64,
    /// Slot at which the query finished.
    pub completed_at: u64,
    /// Per-channel costs, in channel order.
    pub channels: Vec<ChannelCost>,
}

impl VariantRun {
    /// Access time in slots.
    pub fn access_time(&self) -> u64 {
        self.completed_at - self.issued_at
    }

    /// Tune-in time in pages (all channels).
    pub fn tune_in(&self) -> u64 {
        self.channels.iter().map(|c| c.total_pages()).sum()
    }

    /// The visit order (which channel is first).
    pub fn order(&self) -> VisitOrder {
        if self.stops.first().is_some_and(|s| s.2 == 0) {
            VisitOrder::SFirst
        } else {
            VisitOrder::RFirst
        }
    }
}

fn validate(overlay: &PhaseOverlay<'_>, p: Point, ann: &AnnSpec) -> Result<(), TnnError> {
    let k = overlay.len();
    if k < 2 {
        return Err(TnnError::WrongChannelCount {
            needed: 2,
            available: k,
        });
    }
    if !p.is_finite() {
        return Err(TnnError::NonFiniteQuery);
    }
    ann.check_channels(k);
    check_channels_non_empty(overlay)
}

/// Shared estimate: parallel NN searches from `p` on every channel,
/// returning the per-channel NN points with their estimate costs.
#[allow(clippy::type_complexity)]
fn parallel_estimate<Q: CandidateQueue>(
    overlay: &PhaseOverlay<'_>,
    p: Point,
    issued_at: u64,
    ann: &AnnSpec,
    scratch: &mut QueryScratch<Q>,
) -> Result<(Vec<(Point, ObjectId)>, TunerVec, u64, HopStatsVec), TnnError> {
    let k = overlay.len();
    let mut tasks =
        spawn_parallel_searches(overlay, p, issued_at, |i| ann.mode(i), scratch.nn_slice(k));
    run_interleaved(&mut tasks, |_, _, _, _| {});
    harvest_searches(tasks, scratch.nn_slice(k))
}

/// Runs the filter windows on every channel out of the caller's scratch
/// buffers and returns the completed tasks (the joins read the hit lists
/// in place; recycle the tasks when done) plus the filter finish time.
fn filter<'a>(
    overlay: &PhaseOverlay<'a>,
    range: Circle,
    start: u64,
    window: &mut [WindowScratch],
) -> (Vec<WindowQueryTask<'a>>, u64) {
    let mut tasks = Vec::with_capacity(overlay.len());
    let mut end = start;
    for (i, w_scratch) in window.iter_mut().take(overlay.len()).enumerate() {
        let mut w = WindowQueryTask::with_scratch(overlay.view(i), range, start, w_scratch);
        end = end.max(w.run_to_completion());
        tasks.push(w);
    }
    (tasks, end)
}

/// Per-channel cost assembly shared by both variants, including the
/// final retrieval of the answer objects' data pages.
#[allow(clippy::too_many_arguments)] // plain accounting glue, one value per field
fn assemble(
    overlay: &PhaseOverlay<'_>,
    issued_at: u64,
    est_tuners: &TunerVec,
    est_end: u64,
    est_hops: &HopStatsVec,
    filter_tuners: &[Tuner],
    filter_end: u64,
    stops: Vec<(Point, ObjectId, usize)>,
    total_dist: f64,
    search_radius: f64,
    retrieve: bool,
) -> VariantRun {
    let k = overlay.len();
    let mut channels = vec![ChannelCost::default(); k];
    for i in 0..k {
        channels[i].estimate_pages = est_tuners[i].pages;
        channels[i].filter_pages = filter_tuners[i].pages;
        channels[i].peak_queue = est_hops[i].peak_queue;
        channels[i].prune_hits = est_hops[i].prune_hits;
        channels[i].finish_time = est_tuners[i]
            .finish_time
            .unwrap_or(issued_at)
            .max(filter_tuners[i].finish_time.unwrap_or(issued_at))
            .max(est_end);
    }
    if retrieve {
        for &(_, object, ch) in &stops {
            let (done, pages) = overlay.view(ch).retrieve_object(object, filter_end);
            channels[ch].retrieve_pages += pages;
            channels[ch].finish_time = channels[ch].finish_time.max(done);
        }
    }
    let completed_at = channels
        .iter()
        .map(|c| c.finish_time)
        .max()
        .unwrap_or(filter_end)
        .max(filter_end);
    VariantRun {
        stops,
        total_dist,
        search_radius,
        issued_at,
        completed_at,
        channels,
    }
}

/// The order-free pipeline behind [`crate::Query::order_free`]: runs over
/// a [`PhaseOverlay`] (zero-clone per-query phases), supports per-channel
/// ANN modes through [`AnnSpec`], and reuses the caller's k-ary
/// [`QueryScratch`].
///
/// # Errors
/// [`TnnError::WrongChannelCount`] for fewer than two channels;
/// [`TnnError::NonFiniteQuery`] for NaN/infinite query points;
/// [`TnnError::EmptyChannel`] for channels broadcasting empty datasets.
///
/// # Panics
/// Panics when a per-channel [`AnnSpec`] does not match the channel
/// count.
pub fn order_free_tnn_overlay<Q: CandidateQueue>(
    overlay: &PhaseOverlay<'_>,
    p: Point,
    issued_at: u64,
    ann: &AnnSpec,
    retrieve_answer_objects: bool,
    scratch: &mut QueryScratch<Q>,
) -> Result<VariantRun, TnnError> {
    validate(overlay, p, ann)?;
    let k = overlay.len();
    let (nns, est_tuners, est_end, est_hops) =
        parallel_estimate(overlay, p, issued_at, ann, scratch)?;
    scratch.ensure_visit_orders(k);

    // Best feasible chain through the per-channel NNs over all visit
    // orders; earlier (lexicographic) orders win ties.
    let mut radius = f64::INFINITY;
    for order in &scratch.visit_orders {
        let d = chain_length(p, order.iter().map(|&i| nns[i].0));
        if d < radius {
            radius = d;
        }
    }

    let range = Circle::new(p, radius * (1.0 + 4.0 * f64::EPSILON));
    // Field destructuring keeps the window, join, and permutation-table
    // borrows disjoint.
    let QueryScratch {
        window,
        join,
        visit_orders,
        ..
    } = scratch;
    let (windows, filter_end) = filter(overlay, range, est_end, window);
    let filter_tuners: Vec<Tuner> = windows.iter().map(|w| *w.tuner()).collect();

    let layers: Vec<&[(Point, ObjectId)]> = windows.iter().map(|w| w.hits()).collect();
    let MergedRoute { stops, total_dist } = merge_route_layers(
        join,
        RouteObjective::OrderFree,
        p,
        &layers,
        Some(visit_orders),
    )
    .expect("the estimate chain lies inside the range, so no layer is empty");
    for (w, w_scratch) in windows.into_iter().zip(window.iter_mut()) {
        w.recycle(w_scratch);
    }
    Ok(assemble(
        overlay,
        issued_at,
        &est_tuners,
        est_end,
        &est_hops,
        &filter_tuners,
        filter_end,
        stops,
        total_dist,
        radius,
        retrieve_answer_objects,
    ))
}

/// The round-trip pipeline behind [`crate::Query::round_trip`]: minimizes
/// the closed tour `dis(p, s₁) + Σ dis(sᵢ, sᵢ₊₁) + dis(s_k, p)` with
/// `sᵢ` drawn from channel `i`, visiting the channels in order. Runs over
/// a [`PhaseOverlay`], supports per-channel ANN modes, and reuses the
/// caller's [`QueryScratch`].
///
/// The filter uses `circle(p, d/2)`: any optimal-tour member `x`
/// satisfies `2·dis(p, x) ≤ tour ≤ d` by the triangle inequality.
///
/// # Errors
/// As [`order_free_tnn_overlay`].
///
/// # Panics
/// Panics when a per-channel [`AnnSpec`] does not match the channel
/// count.
pub fn round_trip_tnn_overlay<Q: CandidateQueue>(
    overlay: &PhaseOverlay<'_>,
    p: Point,
    issued_at: u64,
    ann: &AnnSpec,
    retrieve_answer_objects: bool,
    scratch: &mut QueryScratch<Q>,
) -> Result<VariantRun, TnnError> {
    validate(overlay, p, ann)?;
    let (nns, est_tuners, est_end, est_hops) =
        parallel_estimate(overlay, p, issued_at, ann, scratch)?;
    let d_loop =
        chain_length(p, nns.iter().map(|&(pt, _)| pt)) + nns.last().expect("k ≥ 2 hops").0.dist(p);

    let range = Circle::new(p, d_loop * 0.5 * (1.0 + 4.0 * f64::EPSILON));
    let QueryScratch { window, join, .. } = scratch;
    let (windows, filter_end) = filter(overlay, range, est_end, window);
    let filter_tuners: Vec<Tuner> = windows.iter().map(|w| *w.tuner()).collect();

    let layers: Vec<&[(Point, ObjectId)]> = windows.iter().map(|w| w.hits()).collect();
    let MergedRoute { stops, total_dist } =
        merge_route_layers(join, RouteObjective::RoundTrip, p, &layers, None)
            .expect("the estimate tour lies inside the half-radius range");
    for (w, w_scratch) in windows.into_iter().zip(window.iter_mut()) {
        w.recycle(w_scratch);
    }
    Ok(assemble(
        overlay,
        issued_at,
        &est_tuners,
        est_end,
        &est_hops,
        &filter_tuners,
        filter_end,
        stops,
        total_dist,
        d_loop * 0.5,
        retrieve_answer_objects,
    ))
}

/// The two-channel round-trip join: minimum of
/// `dis(p,s) + dis(s,r) + dis(r,p)` over the candidate sets, with early
/// exit over `s` ordered by `dis(p, s)` (for any `r`,
/// `dis(s,r) + dis(r,p) ≥ dis(s,p)`, so the tour through `s` is at least
/// `2·dis(p,s)`). The `k > 2` generalization is
/// [`crate::chain_loop_join`].
pub fn round_trip_join(
    p: Point,
    s_cands: &[(Point, ObjectId)],
    r_cands: &[(Point, ObjectId)],
) -> Option<TnnPair> {
    if s_cands.is_empty() || r_cands.is_empty() {
        return None;
    }
    let mut order: Vec<usize> = (0..s_cands.len()).collect();
    order.sort_by(|&a, &b| p.dist_sq(s_cands[a].0).total_cmp(&p.dist_sq(s_cands[b].0)));
    let mut best: Option<TnnPair> = None;
    for &si in &order {
        let (s_pt, s_id) = s_cands[si];
        let d_ps = p.dist(s_pt);
        if let Some(b) = &best {
            if 2.0 * d_ps >= b.dist {
                break;
            }
        }
        for &(r_pt, r_id) in r_cands {
            let loop_len = d_ps + s_pt.dist(r_pt) + r_pt.dist(p);
            if best.as_ref().is_none_or(|b| loop_len < b.dist) {
                best = Some(TnnPair {
                    s: (s_pt, s_id),
                    r: (r_pt, r_id),
                    dist: loop_len,
                });
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::permutations;
    use crate::merge::route_length;
    use crate::task::queue::ArrivalHeap;
    use crate::AnnMode;
    use std::sync::Arc;
    use tnn_broadcast::{BroadcastParams, MultiChannelEnv};
    use tnn_rtree::{PackingAlgorithm, RTree};

    fn order_free(
        env: &MultiChannelEnv,
        p: Point,
        issued_at: u64,
        ann: AnnMode,
        retrieve: bool,
    ) -> Result<VariantRun, TnnError> {
        order_free_tnn_overlay(
            &PhaseOverlay::identity(env),
            p,
            issued_at,
            &AnnSpec::Uniform(ann),
            retrieve,
            &mut QueryScratch::<ArrivalHeap>::default(),
        )
    }

    fn round_trip(
        env: &MultiChannelEnv,
        p: Point,
        issued_at: u64,
        ann: AnnMode,
        retrieve: bool,
    ) -> Result<VariantRun, TnnError> {
        round_trip_tnn_overlay(
            &PhaseOverlay::identity(env),
            p,
            issued_at,
            &AnnSpec::Uniform(ann),
            retrieve,
            &mut QueryScratch::<ArrivalHeap>::default(),
        )
    }

    fn env_k(layers: &[Vec<Point>], phases: &[u64]) -> MultiChannelEnv {
        let params = BroadcastParams::new(64);
        let trees = layers
            .iter()
            .map(|pts| {
                Arc::new(RTree::build(pts, params.rtree_params(), PackingAlgorithm::Str).unwrap())
            })
            .collect();
        MultiChannelEnv::new(trees, params, phases)
    }

    fn env(s: &[Point], r: &[Point]) -> MultiChannelEnv {
        env_k(&[s.to_vec(), r.to_vec()], &[13, 31])
    }

    fn cloud(n: usize, salt: usize) -> Vec<Point> {
        (0..n)
            .map(|i| {
                Point::new(
                    ((i + salt) * 37 % 211) as f64,
                    ((i + salt) * 53 % 223) as f64,
                )
            })
            .collect()
    }

    #[test]
    fn permutations_are_lexicographic_identity_first() {
        let perms = permutations(3);
        assert_eq!(perms.len(), 6);
        assert_eq!(perms[0], vec![0, 1, 2]);
        assert_eq!(perms[5], vec![2, 1, 0]);
        assert_eq!(permutations(2), vec![vec![0, 1], vec![1, 0]]);
    }

    #[test]
    fn order_free_matches_brute_force() {
        let s = cloud(90, 1);
        let r = cloud(70, 8);
        let e = env(&s, &r);
        for (px, py) in [(10.0, 10.0), (120.0, 80.0), (200.0, 150.0)] {
            let p = Point::new(px, py);
            let run = order_free(&e, p, 0, AnnMode::Exact, false).unwrap();
            let mut best = f64::INFINITY;
            for &sp in &s {
                for &rp in &r {
                    best = best
                        .min(p.dist(sp) + sp.dist(rp))
                        .min(p.dist(rp) + rp.dist(sp));
                }
            }
            assert!((run.total_dist - best).abs() < 1e-9, "query {p:?}");
        }
    }

    #[test]
    fn order_free_three_channels_matches_brute_force() {
        let layers = vec![cloud(25, 1), cloud(30, 8), cloud(20, 15)];
        let e = env_k(&layers, &[3, 17, 91]);
        for (px, py) in [(40.0, 40.0), (160.0, 120.0)] {
            let p = Point::new(px, py);
            let run = order_free(&e, p, 0, AnnMode::Exact, false).unwrap();
            // Brute force over all orders and all triples.
            let mut best = f64::INFINITY;
            for order in permutations(3) {
                for &a in &layers[order[0]] {
                    for &b in &layers[order[1]] {
                        for &c in &layers[order[2]] {
                            best = best.min(p.dist(a) + a.dist(b) + b.dist(c));
                        }
                    }
                }
            }
            assert!(
                (run.total_dist - best).abs() < 1e-9,
                "query {p:?}: got {} expected {best}",
                run.total_dist
            );
            assert_eq!(run.stops.len(), 3);
            // The stops visit each channel exactly once.
            let mut seen: Vec<usize> = run.stops.iter().map(|s| s.2).collect();
            seen.sort_unstable();
            assert_eq!(seen, vec![0, 1, 2]);
            // The reported total is realized by the reported stops.
            assert!((route_length(p, &run.stops) - run.total_dist).abs() < 1e-9);
        }
    }

    #[test]
    fn order_free_never_worse_than_fixed_order() {
        let s = cloud(60, 2);
        let r = cloud(80, 5);
        let e = env(&s, &r);
        let p = Point::new(77.0, 99.0);
        let free = order_free(&e, p, 0, AnnMode::Exact, false).unwrap();
        let fixed = crate::exact_tnn(p, e.channel(0).tree(), e.channel(1).tree());
        assert!(free.total_dist <= fixed.dist + 1e-9);
    }

    #[test]
    fn order_free_reports_consistent_order() {
        // Put R's points very close to p and S far: visiting R first wins.
        let s: Vec<Point> = (0..30)
            .map(|i| Point::new(500.0 + i as f64, 500.0))
            .collect();
        let r: Vec<Point> = (0..30).map(|i| Point::new(10.0 + i as f64, 10.0)).collect();
        let e = env(&s, &r);
        let p = Point::new(0.0, 0.0);
        let run = order_free(&e, p, 0, AnnMode::Exact, false).unwrap();
        assert_eq!(run.order(), VisitOrder::RFirst);
        assert_eq!(run.stops[0].2, 1);
        assert_eq!(run.stops[1].2, 0);
    }

    #[test]
    fn round_trip_matches_brute_force() {
        let s = cloud(70, 3);
        let r = cloud(60, 11);
        let e = env(&s, &r);
        for (px, py) in [(30.0, 170.0), (150.0, 40.0)] {
            let p = Point::new(px, py);
            let run = round_trip(&e, p, 0, AnnMode::Exact, false).unwrap();
            let mut best = f64::INFINITY;
            for &sp in &s {
                for &rp in &r {
                    best = best.min(p.dist(sp) + sp.dist(rp) + rp.dist(p));
                }
            }
            assert!((run.total_dist - best).abs() < 1e-9, "query {p:?}");
        }
    }

    #[test]
    fn round_trip_three_channels_matches_brute_force() {
        let layers = vec![cloud(25, 4), cloud(22, 12), cloud(28, 21)];
        let e = env_k(&layers, &[7, 3, 55]);
        for (px, py) in [(60.0, 60.0), (150.0, 110.0)] {
            let p = Point::new(px, py);
            let run = round_trip(&e, p, 0, AnnMode::Exact, false).unwrap();
            let mut best = f64::INFINITY;
            for &a in &layers[0] {
                for &b in &layers[1] {
                    for &c in &layers[2] {
                        best = best.min(p.dist(a) + a.dist(b) + b.dist(c) + c.dist(p));
                    }
                }
            }
            assert!(
                (run.total_dist - best).abs() < 1e-9,
                "query {p:?}: got {} expected {best}",
                run.total_dist
            );
            // Channel order, closed at p.
            assert_eq!(
                run.stops.iter().map(|s| s.2).collect::<Vec<_>>(),
                vec![0, 1, 2]
            );
            let one_way = route_length(p, &run.stops);
            let back = run.stops.last().unwrap().0.dist(p);
            assert!((one_way + back - run.total_dist).abs() < 1e-9);
        }
    }

    #[test]
    fn round_trip_value_is_symmetric_in_dataset_roles() {
        let s = cloud(50, 4);
        let r = cloud(55, 9);
        let p = Point::new(111.0, 55.0);
        let run_sr = round_trip(&env(&s, &r), p, 0, AnnMode::Exact, false).unwrap();
        let run_rs = round_trip(&env(&r, &s), p, 0, AnnMode::Exact, false).unwrap();
        assert!((run_sr.total_dist - run_rs.total_dist).abs() < 1e-9);
    }

    #[test]
    fn round_trip_is_at_least_one_way() {
        let s = cloud(40, 6);
        let r = cloud(45, 13);
        let e = env(&s, &r);
        let p = Point::new(60.0, 60.0);
        let rt = round_trip(&e, p, 0, AnnMode::Exact, false).unwrap();
        let ow = crate::exact_tnn(p, e.channel(0).tree(), e.channel(1).tree());
        assert!(rt.total_dist >= ow.dist - 1e-9);
    }

    #[test]
    fn variants_validate_inputs() {
        let s = cloud(10, 0);
        let e = env(&s, &s);
        assert!(matches!(
            order_free(&e, Point::new(f64::NAN, 0.0), 0, AnnMode::Exact, false),
            Err(TnnError::NonFiniteQuery)
        ));
        assert!(matches!(
            round_trip(&e, Point::new(0.0, f64::INFINITY), 0, AnnMode::Exact, false),
            Err(TnnError::NonFiniteQuery)
        ));
        let params = BroadcastParams::new(64);
        let full =
            Arc::new(RTree::build(&s, params.rtree_params(), PackingAlgorithm::Str).unwrap());
        let empty = Arc::new(RTree::empty(params.rtree_params()));
        let degenerate = MultiChannelEnv::new(vec![full, empty], params, &[0, 0]);
        assert_eq!(
            order_free(&degenerate, Point::ORIGIN, 0, AnnMode::Exact, false).unwrap_err(),
            TnnError::EmptyChannel { channel: 1 }
        );
        assert_eq!(
            round_trip(&degenerate, Point::ORIGIN, 0, AnnMode::Exact, false).unwrap_err(),
            TnnError::EmptyChannel { channel: 1 }
        );
    }

    #[test]
    fn variants_account_costs() {
        let s = cloud(80, 7);
        let r = cloud(90, 15);
        let e = env(&s, &r);
        let p = Point::new(100.0, 100.0);
        let run = round_trip(&e, p, 5, AnnMode::Exact, true).unwrap();
        assert!(run.tune_in() > 0);
        assert!(run.access_time() > 0);
        // Retrieval downloaded both objects' pages (16 each at 64 B).
        assert_eq!(
            run.channels[0].retrieve_pages + run.channels[1].retrieve_pages,
            32
        );
    }

    #[test]
    fn round_trip_join_empty_sides() {
        assert!(round_trip_join(Point::ORIGIN, &[], &[]).is_none());
        let one = vec![(Point::new(1.0, 0.0), ObjectId(0))];
        assert!(round_trip_join(Point::ORIGIN, &one, &[]).is_none());
        let pair = round_trip_join(Point::ORIGIN, &one, &one).unwrap();
        assert!((pair.dist - 2.0).abs() < 1e-12);
    }
}
