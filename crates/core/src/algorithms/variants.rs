//! TNN variants from the paper's future-work list (§7):
//!
//! * **Order-free TNN** (item 2: "the visiting order of the types of
//!   objects of interest is not specified"): find the better of
//!   `p → s → r` and `p → r → s`.
//! * **Round-trip TNN** (item 3: "a complete travel route, which includes
//!   the route to return to the source point"): minimize the loop
//!   `dis(p, s) + dis(s, r) + dis(r, p)`.
//!
//! Both reuse the Double-NN estimate (parallel NN searches from `p` on
//! both channels) and generalize Theorem 1:
//!
//! * order-free: the winning chain's total `T*` is at most the better
//!   feasible chain through the two NNs, and every member of the optimal
//!   chain lies within `T*` of `p` — so `circle(p, d)` with
//!   `d = min(d_sr, d_rs)` suffices;
//! * round-trip: for any loop through `x`, the triangle inequality gives
//!   `2·dis(p, x) ≤ loop length`, so `circle(p, d/2)` with `d` the
//!   feasible NN loop suffices.

use super::{run_parallel, QueryScratch};
use crate::task::queue::{ArrivalHeap, CandidateQueue};
use crate::task::{BroadcastNnSearch, WindowQueryTask, WindowScratch};
use crate::{AnnMode, AnnSpec, ChannelCost, SearchMode, TnnError, TnnPair};
use serde::{Deserialize, Serialize};
use tnn_broadcast::{MultiChannelEnv, PhaseOverlay};
use tnn_geom::{Circle, Point};
use tnn_rtree::ObjectId;

/// Which dataset the order-free answer visits first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VisitOrder {
    /// `p → s → r` (the plain TNN order).
    SFirst,
    /// `p → r → s` (the reversed order).
    RFirst,
}

/// Outcome of an order-free or round-trip TNN query.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VariantRun {
    /// The first stop: `(point, object, channel index)`.
    pub first: (Point, ObjectId, usize),
    /// The second stop: `(point, object, channel index)`.
    pub second: (Point, ObjectId, usize),
    /// Total length of the route (one-way for order-free, full loop for
    /// round-trip).
    pub total_dist: f64,
    /// Filter radius used.
    pub search_radius: f64,
    /// Slot at which the query was issued.
    pub issued_at: u64,
    /// Slot at which the query finished.
    pub completed_at: u64,
    /// Per-channel costs.
    pub channels: [ChannelCost; 2],
}

impl VariantRun {
    /// Access time in slots.
    pub fn access_time(&self) -> u64 {
        self.completed_at - self.issued_at
    }

    /// Tune-in time in pages.
    pub fn tune_in(&self) -> u64 {
        self.channels.iter().map(|c| c.total_pages()).sum()
    }

    /// The visit order (which channel is first).
    pub fn order(&self) -> VisitOrder {
        if self.first.2 == 0 {
            VisitOrder::SFirst
        } else {
            VisitOrder::RFirst
        }
    }
}

/// Shared estimate: parallel NN searches from `p` on both channels,
/// returning the two NNs and the estimate costs.
#[allow(clippy::type_complexity)]
fn double_estimate<Q: CandidateQueue>(
    overlay: &PhaseOverlay<'_>,
    p: Point,
    issued_at: u64,
    ann: &AnnSpec,
    scratch: &mut QueryScratch<Q>,
) -> (
    (Point, ObjectId),
    (Point, ObjectId),
    [tnn_broadcast::Tuner; 2],
    u64,
) {
    let (s0, s1) = scratch.nn_pair();
    let mut a = BroadcastNnSearch::with_scratch(
        overlay.view(0),
        SearchMode::Point { q: p },
        ann.mode(0),
        issued_at,
        s0,
    );
    let mut b = BroadcastNnSearch::with_scratch(
        overlay.view(1),
        SearchMode::Point { q: p },
        ann.mode(1),
        issued_at,
        s1,
    );
    run_parallel(&mut a, &mut b, |_, _, _, _| {});
    let (s_pt, s_id, _) = a.best().expect("non-empty S");
    let (r_pt, r_id, _) = b.best().expect("non-empty R");
    let out = (
        (s_pt, s_id),
        (r_pt, r_id),
        [*a.tuner(), *b.tuner()],
        a.now().max(b.now()),
    );
    a.recycle(s0);
    b.recycle(s1);
    out
}

fn validate(overlay: &PhaseOverlay<'_>, p: Point, ann: &AnnSpec) -> Result<(), TnnError> {
    if overlay.len() != 2 {
        return Err(TnnError::WrongChannelCount {
            needed: 2,
            available: overlay.len(),
        });
    }
    if !p.is_finite() {
        return Err(TnnError::NonFiniteQuery);
    }
    ann.check_channels(2);
    Ok(())
}

/// Runs both filter windows out of the caller's scratch buffers and
/// returns the completed tasks (the joins read the hit lists in place;
/// recycle the tasks when done) plus the filter finish time.
fn filter<'a>(
    overlay: &PhaseOverlay<'a>,
    range: Circle,
    start: u64,
    w0_scratch: &mut WindowScratch,
    w1_scratch: &mut WindowScratch,
) -> (WindowQueryTask<'a>, WindowQueryTask<'a>, u64) {
    let mut w0 = WindowQueryTask::with_scratch(overlay.view(0), range, start, w0_scratch);
    let f0 = w0.run_to_completion();
    let mut w1 = WindowQueryTask::with_scratch(overlay.view(1), range, start, w1_scratch);
    let f1 = w1.run_to_completion();
    let end = f0.max(f1);
    (w0, w1, end)
}

#[allow(clippy::too_many_arguments)] // plain accounting glue, one value per field
fn assemble(
    overlay: &PhaseOverlay<'_>,
    issued_at: u64,
    est_tuners: [tnn_broadcast::Tuner; 2],
    est_end: u64,
    filter_tuners: [tnn_broadcast::Tuner; 2],
    filter_end: u64,
    first: (Point, ObjectId, usize),
    second: (Point, ObjectId, usize),
    total_dist: f64,
    search_radius: f64,
    retrieve: bool,
) -> VariantRun {
    let mut channels = [ChannelCost::default(), ChannelCost::default()];
    for k in 0..2 {
        channels[k].estimate_pages = est_tuners[k].pages;
        channels[k].filter_pages = filter_tuners[k].pages;
        channels[k].finish_time = est_tuners[k]
            .finish_time
            .unwrap_or(issued_at)
            .max(filter_tuners[k].finish_time.unwrap_or(issued_at))
            .max(est_end);
    }
    if retrieve {
        for &(_, object, ch) in &[first, second] {
            let (done, pages) = overlay.view(ch).retrieve_object(object, filter_end);
            channels[ch].retrieve_pages += pages;
            channels[ch].finish_time = channels[ch].finish_time.max(done);
        }
    }
    let completed_at = channels[0]
        .finish_time
        .max(channels[1].finish_time)
        .max(filter_end);
    VariantRun {
        first,
        second,
        total_dist,
        search_radius,
        issued_at,
        completed_at,
        channels,
    }
}

/// Order-free TNN (future-work item 2): returns the shorter of the best
/// `p → s → r` and the best `p → r → s` routes, with one ANN mode shared
/// by both channels.
///
/// # Errors
/// [`TnnError::WrongChannelCount`] / [`TnnError::NonFiniteQuery`] as for
/// [`crate::run_query`].
#[deprecated(
    since = "0.2.0",
    note = "build a `QueryEngine` and run `Query::order_free(p)` instead"
)]
pub fn order_free_tnn(
    env: &MultiChannelEnv,
    p: Point,
    issued_at: u64,
    ann: AnnMode,
    retrieve_answer_objects: bool,
) -> Result<VariantRun, TnnError> {
    order_free_tnn_overlay(
        &PhaseOverlay::identity(env),
        p,
        issued_at,
        &AnnSpec::Uniform(ann),
        retrieve_answer_objects,
        &mut QueryScratch::<ArrivalHeap>::default(),
    )
}

/// The order-free pipeline behind [`order_free_tnn`] and
/// [`crate::QueryEngine`]: runs over a [`PhaseOverlay`], supports
/// per-channel ANN modes, and reuses the caller's [`QueryScratch`].
///
/// # Errors
/// As [`order_free_tnn`].
///
/// # Panics
/// Panics when a per-channel [`AnnSpec`] does not hold exactly two modes.
pub fn order_free_tnn_overlay<Q: CandidateQueue>(
    overlay: &PhaseOverlay<'_>,
    p: Point,
    issued_at: u64,
    ann: &AnnSpec,
    retrieve_answer_objects: bool,
    scratch: &mut QueryScratch<Q>,
) -> Result<VariantRun, TnnError> {
    validate(overlay, p, ann)?;
    let ((s_pt, _), (r_pt, _), est_tuners, est_end) =
        double_estimate(overlay, p, issued_at, ann, scratch);
    // Feasible chains in both directions through the two NNs.
    let d_sr = p.dist(s_pt) + s_pt.dist(r_pt);
    let d_rs = p.dist(r_pt) + r_pt.dist(s_pt);
    let radius = d_sr.min(d_rs);

    let range = Circle::new(p, radius * (1.0 + 4.0 * f64::EPSILON));
    // Field destructuring keeps the window and join borrows disjoint.
    let QueryScratch { window, join, .. } = scratch;
    let (w0_half, w1_half) = window.split_at_mut(1);
    let (w0, w1, filter_end) = filter(overlay, range, est_end, &mut w0_half[0], &mut w1_half[0]);
    let filter_tuners = [*w0.tuner(), *w1.tuner()];

    let forward = crate::tnn_join_with(join, p, w0.hits(), w1.hits());
    let backward = crate::tnn_join_with(join, p, w1.hits(), w0.hits());
    let (pair, order) = match (forward, backward) {
        (Some(f), Some(b)) if b.dist < f.dist => (b, VisitOrder::RFirst),
        (Some(f), _) => (f, VisitOrder::SFirst),
        (None, Some(b)) => (b, VisitOrder::RFirst),
        (None, None) => unreachable!("the estimate pair lies inside the range"),
    };
    let (first, second) = match order {
        VisitOrder::SFirst => ((pair.s.0, pair.s.1, 0), (pair.r.0, pair.r.1, 1)),
        VisitOrder::RFirst => ((pair.s.0, pair.s.1, 1), (pair.r.0, pair.r.1, 0)),
    };
    w0.recycle(&mut w0_half[0]);
    w1.recycle(&mut w1_half[0]);
    Ok(assemble(
        overlay,
        issued_at,
        est_tuners,
        est_end,
        filter_tuners,
        filter_end,
        first,
        second,
        pair.dist,
        radius,
        retrieve_answer_objects,
    ))
}

/// Round-trip TNN (future-work item 3): minimizes the closed tour
/// `dis(p, s) + dis(s, r) + dis(r, p)` with `s ∈ S`, `r ∈ R`, with one
/// ANN mode shared by both channels.
///
/// The filter uses `circle(p, d/2)`: any optimal-loop member `x`
/// satisfies `2·dis(p, x) ≤ loop ≤ d` by the triangle inequality.
///
/// # Errors
/// [`TnnError::WrongChannelCount`] / [`TnnError::NonFiniteQuery`] as for
/// [`crate::run_query`].
#[deprecated(
    since = "0.2.0",
    note = "build a `QueryEngine` and run `Query::round_trip(p)` instead"
)]
pub fn round_trip_tnn(
    env: &MultiChannelEnv,
    p: Point,
    issued_at: u64,
    ann: AnnMode,
    retrieve_answer_objects: bool,
) -> Result<VariantRun, TnnError> {
    round_trip_tnn_overlay(
        &PhaseOverlay::identity(env),
        p,
        issued_at,
        &AnnSpec::Uniform(ann),
        retrieve_answer_objects,
        &mut QueryScratch::<ArrivalHeap>::default(),
    )
}

/// The round-trip pipeline behind [`round_trip_tnn`] and
/// [`crate::QueryEngine`]: runs over a [`PhaseOverlay`], supports
/// per-channel ANN modes, and reuses the caller's [`QueryScratch`].
///
/// # Errors
/// As [`round_trip_tnn`].
///
/// # Panics
/// Panics when a per-channel [`AnnSpec`] does not hold exactly two modes.
pub fn round_trip_tnn_overlay<Q: CandidateQueue>(
    overlay: &PhaseOverlay<'_>,
    p: Point,
    issued_at: u64,
    ann: &AnnSpec,
    retrieve_answer_objects: bool,
    scratch: &mut QueryScratch<Q>,
) -> Result<VariantRun, TnnError> {
    validate(overlay, p, ann)?;
    let ((s_pt, _), (r_pt, _), est_tuners, est_end) =
        double_estimate(overlay, p, issued_at, ann, scratch);
    let d_loop = p.dist(s_pt) + s_pt.dist(r_pt) + r_pt.dist(p);

    let range = Circle::new(p, d_loop * 0.5 * (1.0 + 4.0 * f64::EPSILON));
    scratch.ensure_channels(2);
    let (w0_half, w1_half) = scratch.window.split_at_mut(1);
    let (w0, w1, filter_end) = filter(overlay, range, est_end, &mut w0_half[0], &mut w1_half[0]);
    let filter_tuners = [*w0.tuner(), *w1.tuner()];

    let pair = round_trip_join(p, w0.hits(), w1.hits())
        .expect("the estimate pair lies inside the half-radius range");
    w0.recycle(&mut w0_half[0]);
    w1.recycle(&mut w1_half[0]);
    Ok(assemble(
        overlay,
        issued_at,
        est_tuners,
        est_end,
        filter_tuners,
        filter_end,
        (pair.s.0, pair.s.1, 0),
        (pair.r.0, pair.r.1, 1),
        pair.dist,
        d_loop * 0.5,
        retrieve_answer_objects,
    ))
}

/// The round-trip join: minimum of `dis(p,s) + dis(s,r) + dis(r,p)` over
/// the candidate sets, with early exit over `s` ordered by `dis(p, s)`
/// (for any `r`, `dis(s,r) + dis(r,p) ≥ dis(s,p)`, so the loop through
/// `s` is at least `2·dis(p,s)`).
pub fn round_trip_join(
    p: Point,
    s_cands: &[(Point, ObjectId)],
    r_cands: &[(Point, ObjectId)],
) -> Option<TnnPair> {
    if s_cands.is_empty() || r_cands.is_empty() {
        return None;
    }
    let mut order: Vec<usize> = (0..s_cands.len()).collect();
    order.sort_by(|&a, &b| p.dist_sq(s_cands[a].0).total_cmp(&p.dist_sq(s_cands[b].0)));
    let mut best: Option<TnnPair> = None;
    for &si in &order {
        let (s_pt, s_id) = s_cands[si];
        let d_ps = p.dist(s_pt);
        if let Some(b) = &best {
            if 2.0 * d_ps >= b.dist {
                break;
            }
        }
        for &(r_pt, r_id) in r_cands {
            let loop_len = d_ps + s_pt.dist(r_pt) + r_pt.dist(p);
            if best.as_ref().is_none_or(|b| loop_len < b.dist) {
                best = Some(TnnPair {
                    s: (s_pt, s_id),
                    r: (r_pt, r_id),
                    dist: loop_len,
                });
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tnn_broadcast::BroadcastParams;
    use tnn_rtree::{PackingAlgorithm, RTree};

    fn order_free(
        env: &MultiChannelEnv,
        p: Point,
        issued_at: u64,
        ann: AnnMode,
        retrieve: bool,
    ) -> Result<VariantRun, TnnError> {
        order_free_tnn_overlay(
            &PhaseOverlay::identity(env),
            p,
            issued_at,
            &AnnSpec::Uniform(ann),
            retrieve,
            &mut QueryScratch::<ArrivalHeap>::default(),
        )
    }

    fn round_trip(
        env: &MultiChannelEnv,
        p: Point,
        issued_at: u64,
        ann: AnnMode,
        retrieve: bool,
    ) -> Result<VariantRun, TnnError> {
        round_trip_tnn_overlay(
            &PhaseOverlay::identity(env),
            p,
            issued_at,
            &AnnSpec::Uniform(ann),
            retrieve,
            &mut QueryScratch::<ArrivalHeap>::default(),
        )
    }

    fn env(s: &[Point], r: &[Point]) -> MultiChannelEnv {
        let params = BroadcastParams::new(64);
        let ts = RTree::build(s, params.rtree_params(), PackingAlgorithm::Str).unwrap();
        let tr = RTree::build(r, params.rtree_params(), PackingAlgorithm::Str).unwrap();
        MultiChannelEnv::new(vec![Arc::new(ts), Arc::new(tr)], params, &[13, 31])
    }

    fn cloud(n: usize, salt: usize) -> Vec<Point> {
        (0..n)
            .map(|i| {
                Point::new(
                    ((i + salt) * 37 % 211) as f64,
                    ((i + salt) * 53 % 223) as f64,
                )
            })
            .collect()
    }

    #[test]
    fn order_free_matches_brute_force() {
        let s = cloud(90, 1);
        let r = cloud(70, 8);
        let e = env(&s, &r);
        for (px, py) in [(10.0, 10.0), (120.0, 80.0), (200.0, 150.0)] {
            let p = Point::new(px, py);
            let run = order_free(&e, p, 0, AnnMode::Exact, false).unwrap();
            let mut best = f64::INFINITY;
            for &sp in &s {
                for &rp in &r {
                    best = best
                        .min(p.dist(sp) + sp.dist(rp))
                        .min(p.dist(rp) + rp.dist(sp));
                }
            }
            assert!((run.total_dist - best).abs() < 1e-9, "query {p:?}");
        }
    }

    #[test]
    fn order_free_never_worse_than_fixed_order() {
        let s = cloud(60, 2);
        let r = cloud(80, 5);
        let e = env(&s, &r);
        let p = Point::new(77.0, 99.0);
        let free = order_free(&e, p, 0, AnnMode::Exact, false).unwrap();
        let fixed = crate::exact_tnn(p, e.channel(0).tree(), e.channel(1).tree());
        assert!(free.total_dist <= fixed.dist + 1e-9);
    }

    #[test]
    fn order_free_reports_consistent_order() {
        // Put R's points very close to p and S far: visiting R first wins.
        let s: Vec<Point> = (0..30)
            .map(|i| Point::new(500.0 + i as f64, 500.0))
            .collect();
        let r: Vec<Point> = (0..30).map(|i| Point::new(10.0 + i as f64, 10.0)).collect();
        let e = env(&s, &r);
        let p = Point::new(0.0, 0.0);
        let run = order_free(&e, p, 0, AnnMode::Exact, false).unwrap();
        assert_eq!(run.order(), VisitOrder::RFirst);
        assert_eq!(run.first.2, 1);
        assert_eq!(run.second.2, 0);
    }

    #[test]
    fn round_trip_matches_brute_force() {
        let s = cloud(70, 3);
        let r = cloud(60, 11);
        let e = env(&s, &r);
        for (px, py) in [(30.0, 170.0), (150.0, 40.0)] {
            let p = Point::new(px, py);
            let run = round_trip(&e, p, 0, AnnMode::Exact, false).unwrap();
            let mut best = f64::INFINITY;
            for &sp in &s {
                for &rp in &r {
                    best = best.min(p.dist(sp) + sp.dist(rp) + rp.dist(p));
                }
            }
            assert!((run.total_dist - best).abs() < 1e-9, "query {p:?}");
        }
    }

    #[test]
    fn round_trip_value_is_symmetric_in_dataset_roles() {
        let s = cloud(50, 4);
        let r = cloud(55, 9);
        let p = Point::new(111.0, 55.0);
        let run_sr = round_trip(&env(&s, &r), p, 0, AnnMode::Exact, false).unwrap();
        let run_rs = round_trip(&env(&r, &s), p, 0, AnnMode::Exact, false).unwrap();
        assert!((run_sr.total_dist - run_rs.total_dist).abs() < 1e-9);
    }

    #[test]
    fn round_trip_is_at_least_one_way() {
        let s = cloud(40, 6);
        let r = cloud(45, 13);
        let e = env(&s, &r);
        let p = Point::new(60.0, 60.0);
        let rt = round_trip(&e, p, 0, AnnMode::Exact, false).unwrap();
        let ow = crate::exact_tnn(p, e.channel(0).tree(), e.channel(1).tree());
        assert!(rt.total_dist >= ow.dist - 1e-9);
    }

    #[test]
    fn variants_validate_inputs() {
        let s = cloud(10, 0);
        let e = env(&s, &s);
        assert!(matches!(
            order_free(&e, Point::new(f64::NAN, 0.0), 0, AnnMode::Exact, false),
            Err(TnnError::NonFiniteQuery)
        ));
        assert!(matches!(
            round_trip(&e, Point::new(0.0, f64::INFINITY), 0, AnnMode::Exact, false),
            Err(TnnError::NonFiniteQuery)
        ));
    }

    #[test]
    fn variants_account_costs() {
        let s = cloud(80, 7);
        let r = cloud(90, 15);
        let e = env(&s, &r);
        let p = Point::new(100.0, 100.0);
        let run = round_trip(&e, p, 5, AnnMode::Exact, true).unwrap();
        assert!(run.tune_in() > 0);
        assert!(run.access_time() > 0);
        // Retrieval downloaded both objects' pages (16 each at 64 B).
        assert_eq!(
            run.channels[0].retrieve_pages + run.channels[1].retrieve_pages,
            32
        );
    }

    #[test]
    fn round_trip_join_empty_sides() {
        assert!(round_trip_join(Point::ORIGIN, &[], &[]).is_none());
        let one = vec![(Point::new(1.0, 0.0), ObjectId(0))];
        assert!(round_trip_join(Point::ORIGIN, &one, &[]).is_none());
        let pair = round_trip_join(Point::ORIGIN, &one, &one).unwrap();
        assert!((pair.dist - 2.0).abs() < 1e-12);
    }
}
