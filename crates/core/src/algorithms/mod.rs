//! The four TNN query-processing algorithms and the chained-TNN
//! extension.
//!
//! All share the estimate–filter skeleton of §3.1: an algorithm-specific
//! **estimate** phase produces a search radius `d` (from a feasible pair,
//! except for Approximate-TNN), then the common **filter** phase runs
//! window queries over `circle(p, d)` on both channels in parallel, joins
//! the candidates locally, and finally retrieves the answer objects' data
//! pages.

mod approximate;
mod chain;
mod double_nn;
mod hybrid_nn;
mod variants;
mod window_based;

pub use approximate::{approximate_radius, approximate_radius_for_env};
pub use chain::{chain_tnn, ChainRun};
pub use variants::{order_free_tnn, round_trip_join, round_trip_tnn, VariantRun, VisitOrder};

use crate::task::{NnSearchTask, WindowQueryTask};
use crate::{tnn_join, Algorithm, ChannelCost, TnnConfig, TnnError, TnnRun};
use tnn_broadcast::{MultiChannelEnv, Tuner};
use tnn_geom::{Circle, Point};
use tnn_rtree::ObjectId;

/// Executes one TNN query against a two-channel environment.
///
/// `issued_at` is the global slot at which the mobile client receives the
/// query from its user; together with the channels' phases it determines
/// all root-waiting times (the paper's "two random numbers").
///
/// # Errors
/// [`TnnError::WrongChannelCount`] unless the environment has exactly two
/// channels; [`TnnError::NonFiniteQuery`] for NaN/infinite query points.
pub fn run_query(
    env: &MultiChannelEnv,
    p: Point,
    issued_at: u64,
    cfg: &TnnConfig,
) -> Result<TnnRun, TnnError> {
    if env.len() != 2 {
        return Err(TnnError::WrongChannelCount {
            needed: 2,
            available: env.len(),
        });
    }
    if !p.is_finite() {
        return Err(TnnError::NonFiniteQuery);
    }
    let est = match cfg.algorithm {
        Algorithm::WindowBased => window_based::estimate(env, p, issued_at, cfg),
        Algorithm::ApproximateTnn => approximate::estimate(env, issued_at),
        Algorithm::DoubleNn => double_nn::estimate(env, p, issued_at, cfg),
        Algorithm::HybridNn => hybrid_nn::estimate(env, p, issued_at, cfg),
    };
    Ok(filter_and_finish(env, p, issued_at, est, cfg))
}

/// Result of an estimate phase: the filter radius plus cost accounting.
pub(crate) struct Estimate {
    /// Search radius `d` for the filter phase.
    pub radius: f64,
    /// Estimate-phase page accounting per channel.
    pub tuners: [Tuner; 2],
    /// Global slot at which the radius became known (the filter phase
    /// starts here on both channels).
    pub end: u64,
}

/// The common filter + retrieve tail shared by all four algorithms.
pub(crate) fn filter_and_finish(
    env: &MultiChannelEnv,
    p: Point,
    issued_at: u64,
    est: Estimate,
    cfg: &TnnConfig,
) -> TnnRun {
    // The search range is mathematically *closed*: the feasible pair that
    // produced the radius lies exactly on its boundary. Pad by a few ULPs
    // so sqrt/square rounding cannot exclude boundary candidates.
    let range = Circle::new(p, est.radius * (1.0 + 4.0 * f64::EPSILON));

    // Filter phase: window queries on both channels, in parallel (each has
    // its own timeline starting at the estimate end).
    let mut w0 = WindowQueryTask::new(env.channel(0), range, est.end);
    let f0_end = w0.run_to_completion();
    let mut w1 = WindowQueryTask::new(env.channel(1), range, est.end);
    let f1_end = w1.run_to_completion();

    let candidates = [w0.hits().len(), w1.hits().len()];
    let answer = tnn_join(p, w0.hits(), w1.hits());

    let mut channels = [
        ChannelCost {
            estimate_pages: est.tuners[0].pages,
            filter_pages: w0.tuner().pages,
            retrieve_pages: 0,
            finish_time: est.tuners[0].finish_time.unwrap_or(issued_at).max(f0_end),
        },
        ChannelCost {
            estimate_pages: est.tuners[1].pages,
            filter_pages: w1.tuner().pages,
            retrieve_pages: 0,
            finish_time: est.tuners[1].finish_time.unwrap_or(issued_at).max(f1_end),
        },
    ];

    // Retrieval phase: wake up when the answer objects' data pages are on
    // air. The join is local computation, which the paper neglects, so
    // retrieval starts as soon as both candidate streams are complete.
    if cfg.retrieve_answer_objects {
        if let Some(pair) = &answer {
            let start = f0_end.max(f1_end);
            let (done0, pages0) = env.channel(0).retrieve_object(pair.s.1, start);
            let (done1, pages1) = env.channel(1).retrieve_object(pair.r.1, start);
            channels[0].retrieve_pages = pages0;
            channels[0].finish_time = channels[0].finish_time.max(done0);
            channels[1].retrieve_pages = pages1;
            channels[1].finish_time = channels[1].finish_time.max(done1);
        }
    }

    let completed_at = channels[0]
        .finish_time
        .max(channels[1].finish_time)
        .max(est.end);

    TnnRun {
        answer,
        search_radius: est.radius,
        issued_at,
        estimate_end: est.end,
        completed_at,
        candidates,
        channels,
    }
}

/// Event loop running two NN search tasks concurrently in global time
/// order, firing `on_completion(which, finished_best, at, other_task)`
/// exactly once when one task finishes while the other is still running —
/// the hook Hybrid-NN uses to re-target the surviving search. `at` is the
/// finishing task's clock, the global time of the switch.
///
/// Channel 0 wins ties, making runs deterministic.
pub(crate) fn run_parallel<'a, 'b>(
    a: &mut NnSearchTask<'a>,
    b: &mut NnSearchTask<'b>,
    mut on_completion: impl FnMut(usize, Option<(Point, ObjectId, f64)>, u64, ParallelOther<'_, 'a, 'b>),
) {
    let mut fired = false;
    loop {
        match (a.next_arrival(), b.next_arrival()) {
            (None, None) => break,
            (Some(_), None) => {
                a.step();
            }
            (None, Some(_)) => {
                b.step();
            }
            (Some(x), Some(y)) => {
                if x <= y {
                    a.step();
                } else {
                    b.step();
                }
            }
        }
        if !fired {
            if a.is_done() && !b.is_done() {
                fired = true;
                on_completion(0, a.best(), a.now(), ParallelOther::B(b));
            } else if b.is_done() && !a.is_done() {
                fired = true;
                on_completion(1, b.best(), b.now(), ParallelOther::A(a));
            }
        }
    }
}

/// The still-running task handed to the completion hook (the two tasks may
/// borrow different channels, hence the two-lifetime wrapper).
pub(crate) enum ParallelOther<'x, 'a, 'b> {
    /// Task `a` is still running.
    A(&'x mut NnSearchTask<'a>),
    /// Task `b` is still running.
    B(&'x mut NnSearchTask<'b>),
}

impl ParallelOther<'_, '_, '_> {
    /// Hybrid case 2: re-target the surviving search to a new query point
    /// at time `at`.
    pub fn switch_query_point(self, q: Point, at: u64) {
        match self {
            ParallelOther::A(t) => t.switch_query_point(q, at),
            ParallelOther::B(t) => t.switch_query_point(q, at),
        }
    }

    /// Hybrid case 3: change the surviving search to the transitive
    /// metric at time `at`.
    pub fn switch_to_transitive(self, p: Point, r: Point, at: u64) {
        match self {
            ParallelOther::A(t) => t.switch_to_transitive(p, r, at),
            ParallelOther::B(t) => t.switch_to_transitive(p, r, at),
        }
    }
}
