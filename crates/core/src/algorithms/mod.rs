//! The four TNN query-processing algorithms and the chained-TNN
//! extension.
//!
//! All share the estimate–filter skeleton of §3.1: an algorithm-specific
//! **estimate** phase produces a search radius `d` (from a feasible pair,
//! except for Approximate-TNN), then the common **filter** phase runs
//! window queries over `circle(p, d)` on both channels in parallel, joins
//! the candidates locally, and finally retrieves the answer objects' data
//! pages.
//!
//! Every step is generic over the candidate-queue backend of the NN
//! search tasks (see [`crate::task::queue`]): the default backend is the
//! heap-ordered production queue, while the feature-gated
//! `run_query_linear` drives the identical algorithm code over the
//! paper-literal linear-scan reference for A/B benchmarking. The hot
//! path performs no per-query allocations when driven through
//! [`crate::QueryEngine::run_with`] (or the deprecated
//! [`run_query_with`]) with a reused [`QueryScratch`], and per-query
//! phase randomization goes through [`run_query_overlay`] without
//! cloning the environment.

mod approximate;
mod chain;
mod double_nn;
mod hybrid_nn;
mod variants;
mod window_based;

pub use approximate::{approximate_radius, approximate_radius_for_env};
#[allow(deprecated)] // legacy wrappers stay exported for one release
pub use chain::chain_tnn;
pub use chain::{chain_tnn_overlay, ChainRun};
#[allow(deprecated)] // legacy wrappers stay exported for one release
pub use variants::{order_free_tnn, round_trip_tnn};
pub use variants::{
    order_free_tnn_overlay, round_trip_join, round_trip_tnn_overlay, VariantRun, VisitOrder,
};

use crate::join::JoinScratch;
use crate::task::queue::{ArrivalHeap, CandidateQueue};
use crate::task::{BroadcastNnSearch, NnScratch, WindowQueryTask, WindowScratch};
use crate::{tnn_join_with, Algorithm, ChannelCost, TnnConfig, TnnError, TnnRun};
use tnn_broadcast::{MultiChannelEnv, PhaseOverlay, Tuner};
use tnn_geom::{Circle, Point};
use tnn_rtree::ObjectId;

#[cfg(feature = "linear-reference")]
use crate::task::queue::LinearQueue;

/// Reusable per-worker buffers for the whole query pipeline: one NN
/// search task and one window query per channel, plus the local join —
/// k-ary, growing on demand to the environment's channel count, so plain
/// TNN (k = 2) and the chained extension share one shape. After the first
/// query has grown the buffers, subsequent queries through
/// [`crate::QueryEngine::run_with`] (or the legacy [`run_query_with`])
/// allocate nothing.
#[derive(Debug, Default)]
pub struct QueryScratch<Q: CandidateQueue = ArrivalHeap> {
    /// Estimate-phase NN task buffers, one per channel.
    pub(crate) nn: Vec<NnScratch<Q>>,
    /// Filter-phase window query buffers, one per channel.
    pub(crate) window: Vec<WindowScratch>,
    /// Join working memory.
    pub(crate) join: JoinScratch,
}

impl<Q: CandidateQueue> QueryScratch<Q> {
    /// Grows the per-channel buffers to at least `k` channels.
    pub(crate) fn ensure_channels(&mut self, k: usize) {
        while self.nn.len() < k {
            self.nn.push(NnScratch::default());
        }
        while self.window.len() < k {
            self.window.push(WindowScratch::default());
        }
    }

    /// The first two NN scratches, mutably (the 2-channel estimate
    /// phases).
    pub(crate) fn nn_pair(&mut self) -> (&mut NnScratch<Q>, &mut NnScratch<Q>) {
        self.ensure_channels(2);
        let (a, b) = self.nn.split_at_mut(1);
        (&mut a[0], &mut b[0])
    }
}

/// Executes one TNN query against a two-channel environment.
///
/// `issued_at` is the global slot at which the mobile client receives the
/// query from its user; together with the channels' phases it determines
/// all root-waiting times (the paper's "two random numbers").
///
/// # Errors
/// [`TnnError::WrongChannelCount`] unless the environment has exactly two
/// channels; [`TnnError::NonFiniteQuery`] for NaN/infinite query points.
#[deprecated(
    since = "0.2.0",
    note = "build a `QueryEngine` and run `Query::tnn(p)` instead"
)]
pub fn run_query(
    env: &MultiChannelEnv,
    p: Point,
    issued_at: u64,
    cfg: &TnnConfig,
) -> Result<TnnRun, TnnError> {
    run_query_impl(
        env,
        p,
        issued_at,
        cfg,
        &mut QueryScratch::<ArrivalHeap>::default(),
    )
}

/// [`run_query`] with caller-provided scratch buffers.
#[deprecated(
    since = "0.2.0",
    note = "use `QueryEngine::run_with` (same zero-alloc hot path)"
)]
pub fn run_query_with(
    env: &MultiChannelEnv,
    p: Point,
    issued_at: u64,
    cfg: &TnnConfig,
    scratch: &mut QueryScratch<ArrivalHeap>,
) -> Result<TnnRun, TnnError> {
    run_query_impl(env, p, issued_at, cfg, scratch)
}

/// [`run_query`] over the paper-literal linear-scan candidate queues —
/// identical algorithm code, O(n) queue operations. Only for benchmarks
/// and equivalence tests (the engine equivalent is
/// `QueryEngine::<LinearQueue>::with_queue_backend`).
#[cfg(feature = "linear-reference")]
pub fn run_query_linear(
    env: &MultiChannelEnv,
    p: Point,
    issued_at: u64,
    cfg: &TnnConfig,
) -> Result<TnnRun, TnnError> {
    run_query_impl(
        env,
        p,
        issued_at,
        cfg,
        &mut QueryScratch::<LinearQueue>::default(),
    )
}

/// [`run_query_linear`] with caller-provided scratch buffers.
#[cfg(feature = "linear-reference")]
pub fn run_query_linear_with(
    env: &MultiChannelEnv,
    p: Point,
    issued_at: u64,
    cfg: &TnnConfig,
    scratch: &mut QueryScratch<LinearQueue>,
) -> Result<TnnRun, TnnError> {
    run_query_impl(env, p, issued_at, cfg, scratch)
}

/// The queue-generic query pipeline over an environment's own phases —
/// equivalent to [`run_query_overlay`] with an identity overlay.
pub fn run_query_impl<Q: CandidateQueue>(
    env: &MultiChannelEnv,
    p: Point,
    issued_at: u64,
    cfg: &TnnConfig,
    scratch: &mut QueryScratch<Q>,
) -> Result<TnnRun, TnnError> {
    run_query_overlay(&PhaseOverlay::identity(env), p, issued_at, cfg, scratch)
}

/// The queue-generic query pipeline behind every TNN entry point, over a
/// [`PhaseOverlay`] — per-query phase randomization without cloning the
/// environment. [`crate::QueryEngine`] and the batch runners drive this
/// directly.
///
/// # Errors
/// As [`run_query`].
///
/// # Panics
/// Panics when `cfg.ann` does not hold one mode per channel.
pub fn run_query_overlay<Q: CandidateQueue>(
    overlay: &PhaseOverlay<'_>,
    p: Point,
    issued_at: u64,
    cfg: &TnnConfig,
    scratch: &mut QueryScratch<Q>,
) -> Result<TnnRun, TnnError> {
    if overlay.len() != 2 {
        return Err(TnnError::WrongChannelCount {
            needed: 2,
            available: overlay.len(),
        });
    }
    if !p.is_finite() {
        return Err(TnnError::NonFiniteQuery);
    }
    assert_eq!(cfg.ann.len(), 2, "one ANN mode per channel is required");
    scratch.ensure_channels(2);
    let est = match cfg.algorithm {
        Algorithm::WindowBased => window_based::estimate(overlay, p, issued_at, cfg, scratch),
        Algorithm::ApproximateTnn => approximate::estimate(overlay.env(), issued_at),
        Algorithm::DoubleNn => double_nn::estimate(overlay, p, issued_at, cfg, scratch),
        Algorithm::HybridNn => hybrid_nn::estimate(overlay, p, issued_at, cfg, scratch),
    };
    Ok(filter_and_finish(overlay, p, issued_at, est, cfg, scratch))
}

/// Result of an estimate phase: the filter radius plus cost accounting.
pub(crate) struct Estimate {
    /// Search radius `d` for the filter phase.
    pub radius: f64,
    /// Estimate-phase page accounting per channel.
    pub tuners: [Tuner; 2],
    /// Global slot at which the radius became known (the filter phase
    /// starts here on both channels).
    pub end: u64,
}

/// The common filter + retrieve tail shared by all four algorithms.
pub(crate) fn filter_and_finish<Q: CandidateQueue>(
    overlay: &PhaseOverlay<'_>,
    p: Point,
    issued_at: u64,
    est: Estimate,
    cfg: &TnnConfig,
    scratch: &mut QueryScratch<Q>,
) -> TnnRun {
    // The search range is mathematically *closed*: the feasible pair that
    // produced the radius lies exactly on its boundary. Pad by a few ULPs
    // so sqrt/square rounding cannot exclude boundary candidates.
    let range = Circle::new(p, est.radius * (1.0 + 4.0 * f64::EPSILON));

    // Filter phase: window queries on both channels, in parallel (each has
    // its own timeline starting at the estimate end). Field destructuring
    // keeps the window and join borrows disjoint.
    let QueryScratch { window, join, .. } = scratch;
    let (w0_half, w1_half) = window.split_at_mut(1);
    let (w0_scratch, w1_scratch) = (&mut w0_half[0], &mut w1_half[0]);
    let mut w0 = WindowQueryTask::with_scratch(overlay.view(0), range, est.end, w0_scratch);
    let f0_end = w0.run_to_completion();
    let mut w1 = WindowQueryTask::with_scratch(overlay.view(1), range, est.end, w1_scratch);
    let f1_end = w1.run_to_completion();

    let candidates = [w0.hits().len(), w1.hits().len()];
    let filter_pages = [w0.tuner().pages, w1.tuner().pages];
    let answer = tnn_join_with(join, p, w0.hits(), w1.hits());
    w0.recycle(w0_scratch);
    w1.recycle(w1_scratch);

    let mut channels = [
        ChannelCost {
            estimate_pages: est.tuners[0].pages,
            filter_pages: filter_pages[0],
            retrieve_pages: 0,
            finish_time: est.tuners[0].finish_time.unwrap_or(issued_at).max(f0_end),
        },
        ChannelCost {
            estimate_pages: est.tuners[1].pages,
            filter_pages: filter_pages[1],
            retrieve_pages: 0,
            finish_time: est.tuners[1].finish_time.unwrap_or(issued_at).max(f1_end),
        },
    ];

    // Retrieval phase: wake up when the answer objects' data pages are on
    // air. The join is local computation, which the paper neglects, so
    // retrieval starts as soon as both candidate streams are complete.
    if cfg.retrieve_answer_objects {
        if let Some(pair) = &answer {
            let start = f0_end.max(f1_end);
            let (done0, pages0) = overlay.view(0).retrieve_object(pair.s.1, start);
            let (done1, pages1) = overlay.view(1).retrieve_object(pair.r.1, start);
            channels[0].retrieve_pages = pages0;
            channels[0].finish_time = channels[0].finish_time.max(done0);
            channels[1].retrieve_pages = pages1;
            channels[1].finish_time = channels[1].finish_time.max(done1);
        }
    }

    let completed_at = channels[0]
        .finish_time
        .max(channels[1].finish_time)
        .max(est.end);

    TnnRun {
        answer,
        search_radius: est.radius,
        issued_at,
        estimate_end: est.end,
        completed_at,
        candidates,
        channels,
    }
}

/// Event loop running two NN search tasks concurrently in global time
/// order, firing `on_completion(which, finished_best, at, other_task)`
/// exactly once when one task finishes while the other is still running —
/// the hook Hybrid-NN uses to re-target the surviving search. `at` is the
/// finishing task's clock, the global time of the switch.
///
/// Channel 0 wins ties, making runs deterministic. `next_arrival` is an
/// O(1) heap peek, so the interleaving loop adds no scanning overhead.
pub(crate) fn run_parallel<'a, 'b, Q: CandidateQueue>(
    a: &mut BroadcastNnSearch<'a, Q>,
    b: &mut BroadcastNnSearch<'b, Q>,
    mut on_completion: impl FnMut(
        usize,
        Option<(Point, ObjectId, f64)>,
        u64,
        ParallelOther<'_, 'a, 'b, Q>,
    ),
) {
    let mut fired = false;
    loop {
        match (a.next_arrival(), b.next_arrival()) {
            (None, None) => break,
            (Some(_), None) => {
                a.step();
            }
            (None, Some(_)) => {
                b.step();
            }
            (Some(x), Some(y)) => {
                if x <= y {
                    a.step();
                } else {
                    b.step();
                }
            }
        }
        if !fired {
            if a.is_done() && !b.is_done() {
                fired = true;
                on_completion(0, a.best(), a.now(), ParallelOther::B(b));
            } else if b.is_done() && !a.is_done() {
                fired = true;
                on_completion(1, b.best(), b.now(), ParallelOther::A(a));
            }
        }
    }
}

/// The still-running task handed to the completion hook (the two tasks may
/// borrow different channels, hence the two-lifetime wrapper).
pub(crate) enum ParallelOther<'x, 'a, 'b, Q: CandidateQueue> {
    /// Task `a` is still running.
    A(&'x mut BroadcastNnSearch<'a, Q>),
    /// Task `b` is still running.
    B(&'x mut BroadcastNnSearch<'b, Q>),
}

impl<Q: CandidateQueue> ParallelOther<'_, '_, '_, Q> {
    /// Hybrid case 2: re-target the surviving search to a new query point
    /// at time `at`.
    pub fn switch_query_point(self, q: Point, at: u64) {
        match self {
            ParallelOther::A(t) => t.switch_query_point(q, at),
            ParallelOther::B(t) => t.switch_query_point(q, at),
        }
    }

    /// Hybrid case 3: change the surviving search to the transitive
    /// metric at time `at`.
    pub fn switch_to_transitive(self, p: Point, r: Point, at: u64) {
        match self {
            ParallelOther::A(t) => t.switch_to_transitive(p, r, at),
            ParallelOther::B(t) => t.switch_to_transitive(p, r, at),
        }
    }
}

/// Property tests asserting the heap-ordered production queue and the
/// paper-literal linear-scan reference produce **byte-identical**
/// [`TnnRun`]s — same pages, same finish times, same answers — across all
/// four algorithms, random datasets, phases, ANN modes, and the
/// arrival-tie / mid-flight-switch cases Hybrid-NN exercises.
#[cfg(test)]
mod equivalence_tests {
    use super::*;
    use crate::task::queue::LinearQueue;
    use crate::{AnnMode, SearchMode};
    use proptest::prelude::*;
    use std::sync::Arc;
    use tnn_broadcast::BroadcastParams;
    use tnn_rtree::{PackingAlgorithm, RTree};

    fn build_env(s: &[Point], r: &[Point], page: usize, phases: [u64; 2]) -> MultiChannelEnv {
        let params = BroadcastParams::new(page);
        let ts = RTree::build(s, params.rtree_params(), PackingAlgorithm::Str).unwrap();
        let tr = RTree::build(r, params.rtree_params(), PackingAlgorithm::Str).unwrap();
        MultiChannelEnv::new(vec![Arc::new(ts), Arc::new(tr)], params, &phases)
    }

    fn pts_strategy(max: usize) -> impl Strategy<Value = Vec<Point>> {
        prop::collection::vec(
            (0.0f64..1000.0, 0.0f64..1000.0).prop_map(|(x, y)| Point::new(x, y)),
            1..max,
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn heap_and_linear_runs_are_byte_identical(
            s in pts_strategy(220),
            r in pts_strategy(220),
            (ph0, ph1) in (0u64..50_000, 0u64..50_000),
            page in prop::sample::select(vec![64usize, 128]),
            (qx, qy) in (-100.0f64..1100.0, -100.0f64..1100.0),
            issued_at in 0u64..20_000,
            ann_factor in 0.0f64..2.0,
        ) {
            let env = build_env(&s, &r, page, [ph0, ph1]);
            let p = Point::new(qx, qy);
            let mut heap_scratch = QueryScratch::<ArrivalHeap>::default();
            let mut linear_scratch = QueryScratch::<LinearQueue>::default();
            for alg in Algorithm::ALL {
                for ann in [AnnMode::Exact, AnnMode::Dynamic { factor: ann_factor }] {
                    let cfg = TnnConfig::exact(alg).with_ann_modes(&[ann, ann]);
                    let heap_run =
                        run_query_impl(&env, p, issued_at, &cfg, &mut heap_scratch).unwrap();
                    let linear_run =
                        run_query_impl(&env, p, issued_at, &cfg, &mut linear_scratch).unwrap();
                    prop_assert_eq!(
                        &heap_run, &linear_run,
                        "divergent run for {} / {:?}", alg.name(), ann
                    );
                }
            }
        }

        /// Small, highly symmetric grids force equal-bound tie cases; the
        /// asymmetric sizes force both Hybrid switch directions.
        #[test]
        fn equivalence_on_tie_heavy_grids(
            side in 2usize..7,
            big in 150usize..400,
            phase in 0u64..10_000,
        ) {
            let grid: Vec<Point> = (0..side * side)
                .map(|i| Point::new((i % side) as f64 * 10.0, (i / side) as f64 * 10.0))
                .collect();
            let cloud: Vec<Point> = (0..big)
                .map(|i| Point::new((i * 37 % 211) as f64, (i * 53 % 223) as f64))
                .collect();
            // Query at the exact grid center: equidistant candidates.
            let p = Point::new((side - 1) as f64 * 5.0, (side - 1) as f64 * 5.0);
            for (s, r) in [(&grid, &cloud), (&cloud, &grid)] {
                let env = build_env(s, r, 64, [phase, phase / 2]);
                for alg in Algorithm::ALL {
                    let cfg = TnnConfig::exact(alg);
                    let heap_run = run_query_impl(
                        &env, p, 3, &cfg, &mut QueryScratch::<ArrivalHeap>::default(),
                    )
                    .unwrap();
                    let linear_run = run_query_impl(
                        &env, p, 3, &cfg, &mut QueryScratch::<LinearQueue>::default(),
                    )
                    .unwrap();
                    prop_assert_eq!(&heap_run, &linear_run, "{}", alg.name());
                }
            }
        }
    }

    /// The chained extension uses the same task machinery; spot-check the
    /// heap path against the linear one through the public single-query
    /// entry points.
    #[test]
    fn peak_memory_is_backend_independent() {
        let pts: Vec<Point> = (0..800)
            .map(|i| Point::new((i * 37 % 211) as f64, (i * 53 % 223) as f64))
            .collect();
        let params = BroadcastParams::new(64);
        let tree = RTree::build(&pts, params.rtree_params(), PackingAlgorithm::Str).unwrap();
        let ch = tnn_broadcast::Channel::new(Arc::new(tree), params, 9);
        let q = Point::new(77.0, 133.0);
        let mut heap =
            crate::task::NnSearchTask::new(&ch, SearchMode::Point { q }, AnnMode::Exact, 2);
        let mut linear =
            crate::task::LinearNnSearchTask::new(&ch, SearchMode::Point { q }, AnnMode::Exact, 2);
        heap.run_to_completion();
        linear.run_to_completion();
        assert_eq!(heap.peak_memory(), linear.peak_memory());
        assert_eq!(heap.tuner().pages, linear.tuner().pages);
    }
}
