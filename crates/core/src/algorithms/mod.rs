//! The four TNN query-processing algorithms and the k-channel variants.
//!
//! All share the estimate–filter skeleton of §3.1, generalized from the
//! paper's two-channel special case to `k ≥ 2` channels: an
//! algorithm-specific **estimate** phase produces a search radius `d`
//! (from a feasible `k`-hop chain, except for Approximate-TNN), then the
//! common **filter** phase runs window queries over `circle(p, d)` on
//! every channel in parallel, joins the candidates locally (the
//! two-channel bound-pruned join for `k = 2`, the layered sweep join for
//! `k > 2`), and finally retrieves the answer objects' data pages.
//!
//! Every step is generic over the candidate-queue backend of the NN
//! search tasks (see [`crate::task::queue`]): the default backend is the
//! heap-ordered production queue, while the feature-gated
//! `run_query_linear` drives the identical algorithm code over the
//! paper-literal linear-scan reference for A/B benchmarking. Driven
//! through [`crate::QueryEngine::run_with`] with a reused
//! [`QueryScratch`], every growth-prone buffer (NN queues and parked
//! lists, window queues and hit lists, join order/sweep/DP tables,
//! order-free permutation table) is recycled across queries; what
//! remains per query is a handful of k-element transient vectors (the
//! estimate task/result fan-out, the filter-task list, and the
//! returned route/cost vectors). Per-query phase randomization goes
//! through [`run_query_overlay`] without cloning the environment.

mod approximate;
mod double_nn;
mod hybrid_nn;
mod variants;
mod window_based;

pub use approximate::{approximate_radius, approximate_radius_for_env};
pub use variants::{
    order_free_tnn_overlay, round_trip_join, round_trip_tnn_overlay, VariantRun, VisitOrder,
};

use crate::join::JoinScratch;
use crate::task::queue::{ArrivalHeap, CandidateQueue};
use crate::task::{BroadcastNnSearch, NnScratch, WindowQueryTask, WindowScratch};
use crate::SearchMode;
use crate::{Algorithm, ChannelCost, TnnConfig, TnnError, TnnRun};
use tnn_broadcast::{InlineVec, MultiChannelEnv, PhaseOverlay, Tuner};
use tnn_geom::{Circle, Point};
use tnn_rtree::ObjectId;

#[cfg(feature = "linear-reference")]
use crate::task::queue::LinearQueue;

/// Per-channel estimate-phase tuners, inline up to four channels (the
/// evaluation's workloads never spill).
pub(crate) type TunerVec = InlineVec<Tuner, 4>;

/// Per-channel estimate-phase queue statistics, inline up to four
/// channels like [`TunerVec`].
pub(crate) type HopStatsVec = InlineVec<HopStats, 4>;

/// Client-side queue accounting of one hop's estimate-phase NN search,
/// surfaced on [`ChannelCost`] for observability.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct HopStats {
    /// Peak queued + parked entries — the `(H−1)(M−1)`-bounded metric.
    pub peak_queue: u64,
    /// Entries still parked (pruned by §4.2.4) when the search ended.
    pub prune_hits: u64,
}

/// Reusable per-worker buffers for the whole query pipeline: one NN
/// search task and one window query per channel, plus the local join —
/// k-ary, growing on demand to the environment's channel count, so the
/// two-channel TNN and every `k > 2` route share one shape. After the
/// first query has grown the buffers, subsequent queries through
/// [`crate::QueryEngine::run_with`] allocate only small k-element
/// transient vectors (see the module docs).
#[derive(Debug, Default)]
pub struct QueryScratch<Q: CandidateQueue = ArrivalHeap> {
    /// Estimate-phase NN task buffers, one per channel.
    pub(crate) nn: Vec<NnScratch<Q>>,
    /// Filter-phase window query buffers, one per channel.
    pub(crate) window: Vec<WindowScratch>,
    /// Join working memory.
    pub(crate) join: JoinScratch,
    /// Cached visit-order permutation table for order-free queries
    /// (depends only on the channel count; rebuilt when it changes).
    pub(crate) visit_orders: Vec<Vec<usize>>,
}

impl<Q: CandidateQueue> QueryScratch<Q> {
    /// Grows the per-channel buffers to at least `k` channels.
    pub(crate) fn ensure_channels(&mut self, k: usize) {
        while self.nn.len() < k {
            self.nn.push(NnScratch::default());
        }
        while self.window.len() < k {
            self.window.push(WindowScratch::default());
        }
    }

    /// The first `k` NN scratches, mutably — one per estimate-phase
    /// search task.
    pub(crate) fn nn_slice(&mut self, k: usize) -> &mut [NnScratch<Q>] {
        self.ensure_channels(k);
        &mut self.nn[..k]
    }

    /// Ensures the cached permutation table covers `0..k` (all `k!`
    /// visit orders, lexicographic, identity first).
    pub(crate) fn ensure_visit_orders(&mut self, k: usize) {
        if self.visit_orders.first().map(Vec::len) != Some(k) {
            self.visit_orders = permutations(k);
        }
    }
}

/// All permutations of `0..k`, lexicographically, identity first — the
/// candidate visit orders of an order-free query.
pub(crate) fn permutations(k: usize) -> Vec<Vec<usize>> {
    fn rec(used: &mut Vec<bool>, cur: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        let k = used.len();
        if cur.len() == k {
            out.push(cur.clone());
            return;
        }
        for i in 0..k {
            if !used[i] {
                used[i] = true;
                cur.push(i);
                rec(used, cur, out);
                cur.pop();
                used[i] = false;
            }
        }
    }
    let mut out = Vec::new();
    rec(&mut vec![false; k], &mut Vec::with_capacity(k), &mut out);
    out
}

/// [`run_query_overlay`] against an environment's own phases —
/// equivalent to an identity overlay. The queue-generic single-query
/// entry point for code that owns a scratch but no engine.
pub fn run_query_impl<Q: CandidateQueue>(
    env: &MultiChannelEnv,
    p: Point,
    issued_at: u64,
    cfg: &TnnConfig,
    scratch: &mut QueryScratch<Q>,
) -> Result<TnnRun, TnnError> {
    run_query_overlay(&PhaseOverlay::identity(env), p, issued_at, cfg, scratch)
}

/// [`run_query_impl`] over the paper-literal linear-scan candidate
/// queues — identical algorithm code, O(n) queue operations. Only for
/// benchmarks and equivalence tests (the engine equivalent is
/// `QueryEngine::<LinearQueue>::with_queue_backend`).
#[cfg(feature = "linear-reference")]
pub fn run_query_linear(
    env: &MultiChannelEnv,
    p: Point,
    issued_at: u64,
    cfg: &TnnConfig,
) -> Result<TnnRun, TnnError> {
    run_query_impl(
        env,
        p,
        issued_at,
        cfg,
        &mut QueryScratch::<LinearQueue>::default(),
    )
}

/// [`run_query_linear`] with caller-provided scratch buffers.
#[cfg(feature = "linear-reference")]
pub fn run_query_linear_with(
    env: &MultiChannelEnv,
    p: Point,
    issued_at: u64,
    cfg: &TnnConfig,
    scratch: &mut QueryScratch<LinearQueue>,
) -> Result<TnnRun, TnnError> {
    run_query_impl(env, p, issued_at, cfg, scratch)
}

/// The queue-generic query pipeline behind every TNN entry point, over a
/// [`PhaseOverlay`] — per-query phase randomization without cloning the
/// environment. [`crate::QueryEngine`] and the batch runners drive this
/// directly; any `k ≥ 2` channel count is accepted, with the two-channel
/// case reproducing the paper's algorithms bit-for-bit.
///
/// # Errors
/// [`TnnError::WrongChannelCount`] for fewer than two channels;
/// [`TnnError::NonFiniteQuery`] for NaN/infinite query points;
/// [`TnnError::EmptyChannel`] when a channel broadcasts an empty dataset
/// (no feasible route can exist through it).
///
/// # Panics
/// Panics when `cfg.ann` does not hold one mode per channel.
pub fn run_query_overlay<Q: CandidateQueue>(
    overlay: &PhaseOverlay<'_>,
    p: Point,
    issued_at: u64,
    cfg: &TnnConfig,
    scratch: &mut QueryScratch<Q>,
) -> Result<TnnRun, TnnError> {
    let k = overlay.len();
    if k < 2 {
        return Err(TnnError::WrongChannelCount {
            needed: 2,
            available: k,
        });
    }
    if !p.is_finite() {
        return Err(TnnError::NonFiniteQuery);
    }
    assert_eq!(cfg.ann.len(), k, "one ANN mode per channel is required");
    check_channels_non_empty(overlay)?;
    scratch.ensure_channels(k);
    let est = match cfg.algorithm {
        Algorithm::WindowBased => window_based::estimate(overlay, p, issued_at, cfg, scratch)?,
        Algorithm::ApproximateTnn => approximate::estimate(overlay.env(), issued_at),
        Algorithm::DoubleNn => double_nn::estimate(overlay, p, issued_at, cfg, scratch)?,
        Algorithm::HybridNn => hybrid_nn::estimate(overlay, p, issued_at, cfg, scratch)?,
    };
    Ok(filter_and_finish(overlay, p, issued_at, est, cfg, scratch))
}

/// Returns [`TnnError::EmptyChannel`] for the first channel whose dataset
/// holds no objects — shared degenerate-input gate of every pipeline.
pub(crate) fn check_channels_non_empty(overlay: &PhaseOverlay<'_>) -> Result<(), TnnError> {
    for i in 0..overlay.len() {
        if overlay.channel(i).tree().num_objects() == 0 {
            return Err(TnnError::EmptyChannel { channel: i });
        }
    }
    Ok(())
}

/// Result of an estimate phase: the filter radius plus cost accounting.
pub(crate) struct Estimate {
    /// Search radius `d` for the filter phase.
    pub radius: f64,
    /// Estimate-phase page accounting, one tuner per channel.
    pub tuners: TunerVec,
    /// Global slot at which the radius became known (the filter phase
    /// starts here on every channel).
    pub end: u64,
    /// Per-channel queue statistics of the estimate searches (all zero
    /// for Approximate-TNN, which runs no searches).
    pub hops: HopStatsVec,
}

/// Length of the feasible chain `p → pts₀ → … → pts_{k−1}` — the
/// generalized estimate radius `dis(p, n₁) + Σ dis(nᵢ, nᵢ₊₁)`.
pub(crate) fn chain_length(p: Point, pts: impl IntoIterator<Item = Point>) -> f64 {
    let mut total = 0.0;
    let mut prev = p;
    for pt in pts {
        total += prev.dist(pt);
        prev = pt;
    }
    total
}

/// The common filter + retrieve tail shared by all four algorithms, over
/// `k ≥ 2` channels.
pub(crate) fn filter_and_finish<Q: CandidateQueue>(
    overlay: &PhaseOverlay<'_>,
    p: Point,
    issued_at: u64,
    est: Estimate,
    cfg: &TnnConfig,
    scratch: &mut QueryScratch<Q>,
) -> TnnRun {
    let k = overlay.len();
    // The search range is mathematically *closed*: the feasible chain that
    // produced the radius lies exactly on its boundary. Pad by a few ULPs
    // so sqrt/square rounding cannot exclude boundary candidates.
    let range = Circle::new(p, est.radius * (1.0 + 4.0 * f64::EPSILON));

    // Filter phase: window queries on every channel, in parallel (each
    // has its own timeline starting at the estimate end). Field
    // destructuring keeps the window and join borrows disjoint.
    let QueryScratch { window, join, .. } = scratch;
    let mut windows: Vec<WindowQueryTask<'_>> = Vec::with_capacity(k);
    let mut filter_end = est.end;
    for (i, w_scratch) in window.iter_mut().take(k).enumerate() {
        let mut w = WindowQueryTask::with_scratch(overlay.view(i), range, est.end, w_scratch);
        filter_end = filter_end.max(w.run_to_completion());
        windows.push(w);
    }

    let candidates: Vec<usize> = windows.iter().map(|w| w.hits().len()).collect();
    // Local join through the shared candidate-merge entry point (the
    // two-channel bound-pruned join stays verbatim for k = 2 — bit-
    // identical to the paper pipeline; k > 2 routes go through the
    // layered sweep join).
    let layers: Vec<&[(Point, ObjectId)]> = windows.iter().map(|w| w.hits()).collect();
    let (route, total_dist) = match crate::merge::merge_route_layers(
        join,
        crate::merge::RouteObjective::Chain,
        p,
        &layers,
        None,
    ) {
        Some(merged) => (
            merged
                .stops
                .into_iter()
                .map(|(pt, object, _)| (pt, object))
                .collect(),
            Some(merged.total_dist),
        ),
        None => (Vec::new(), None),
    };

    let mut channels: Vec<ChannelCost> = windows
        .iter()
        .enumerate()
        .map(|(i, w)| ChannelCost {
            estimate_pages: est.tuners[i].pages,
            filter_pages: w.tuner().pages,
            retrieve_pages: 0,
            finish_time: est.tuners[i].finish_time.unwrap_or(issued_at).max(w.now()),
            peak_queue: est.hops[i].peak_queue,
            prune_hits: est.hops[i].prune_hits,
        })
        .collect();
    for (w, w_scratch) in windows.into_iter().zip(window.iter_mut()) {
        w.recycle(w_scratch);
    }

    // Retrieval phase: wake up when the answer objects' data pages are on
    // air. The join is local computation, which the paper neglects, so
    // retrieval starts as soon as every candidate stream is complete.
    if cfg.retrieve_answer_objects {
        for (i, &(_, object)) in route.iter().enumerate() {
            let (done, pages) = overlay.view(i).retrieve_object(object, filter_end);
            channels[i].retrieve_pages = pages;
            channels[i].finish_time = channels[i].finish_time.max(done);
        }
    }

    let completed_at = channels
        .iter()
        .map(|c| c.finish_time)
        .max()
        .unwrap_or(est.end)
        .max(est.end);

    TnnRun {
        route,
        total_dist,
        search_radius: est.radius,
        issued_at,
        estimate_end: est.end,
        completed_at,
        candidates,
        channels,
    }
}

/// Event loop running `k` NN search tasks concurrently in global time
/// order: repeatedly steps the task with the earliest `next_arrival`
/// (lowest channel index wins ties, making runs deterministic) and fires
/// `on_completion(i, finished_best, at, tasks)` whenever task `i`
/// finishes while at least one other task is still running — the hook
/// the generalized Hybrid-NN uses to re-target the surviving neighbor
/// hops. `at` is the finishing task's clock, the global time of the
/// switch.
///
/// `next_arrival` is an O(1) heap peek, so the interleaving loop adds
/// only an O(k) scan per step.
pub(crate) fn run_interleaved<Q: CandidateQueue>(
    tasks: &mut [BroadcastNnSearch<'_, Q>],
    mut on_completion: impl FnMut(
        usize,
        Option<(Point, ObjectId, f64)>,
        u64,
        &mut [BroadcastNnSearch<'_, Q>],
    ),
) {
    loop {
        let mut next: Option<(u64, usize)> = None;
        for (i, t) in tasks.iter().enumerate() {
            if let Some(arrival) = t.next_arrival() {
                if next.is_none_or(|(best, _)| arrival < best) {
                    next = Some((arrival, i));
                }
            }
        }
        let Some((_, i)) = next else { break };
        tasks[i].step();
        if tasks[i].is_done() {
            let best = tasks[i].best();
            let at = tasks[i].now();
            let others_running = tasks
                .iter()
                .enumerate()
                .any(|(j, t)| j != i && !t.is_done());
            if others_running {
                on_completion(i, best, at, tasks);
            }
        }
    }
}

/// Shared estimate fan-out: spawns one NN search from `from` on every
/// channel (all `k` searches start "at the earliest opportunity", §4.1)
/// and runs them to completion through [`run_interleaved`] with the
/// given completion hook. Returns the tasks for the caller to harvest
/// results from; pass them back through [`harvest_searches`].
pub(crate) fn spawn_parallel_searches<'a, Q: CandidateQueue>(
    overlay: &PhaseOverlay<'a>,
    from: Point,
    issued_at: u64,
    ann: impl Fn(usize) -> crate::AnnMode,
    scratch: &mut [NnScratch<Q>],
) -> Vec<BroadcastNnSearch<'a, Q>> {
    scratch
        .iter_mut()
        .enumerate()
        .map(|(i, nn_scratch)| {
            BroadcastNnSearch::with_scratch(
                overlay.view(i),
                SearchMode::Point { q: from },
                ann(i),
                issued_at,
                nn_scratch,
            )
        })
        .collect()
}

/// Collects each task's best point, tuner, clock, and queue statistics,
/// recycling the task buffers into `scratch`. Returns
/// [`TnnError::EmptyChannel`] when a search ended without reaching any
/// data point.
#[allow(clippy::type_complexity)]
pub(crate) fn harvest_searches<Q: CandidateQueue>(
    tasks: Vec<BroadcastNnSearch<'_, Q>>,
    scratch: &mut [NnScratch<Q>],
) -> Result<(Vec<(Point, ObjectId)>, TunerVec, u64, HopStatsVec), TnnError> {
    let mut nns = Vec::with_capacity(tasks.len());
    let mut tuners = TunerVec::new();
    let mut end = 0u64;
    let mut hops = HopStatsVec::new();
    for (i, (task, nn_scratch)) in tasks.into_iter().zip(scratch.iter_mut()).enumerate() {
        let (pt, object, _) = task.best().ok_or(TnnError::EmptyChannel { channel: i })?;
        nns.push((pt, object));
        tuners.push(*task.tuner());
        end = end.max(task.now());
        hops.push(HopStats {
            peak_queue: task.peak_memory() as u64,
            prune_hits: task.parked_len() as u64,
        });
        task.recycle(nn_scratch);
    }
    Ok((nns, tuners, end, hops))
}

/// Property tests asserting the heap-ordered production queue and the
/// paper-literal linear-scan reference produce **byte-identical**
/// [`TnnRun`]s — same pages, same finish times, same answers — across all
/// four algorithms, random datasets, phases, ANN modes, channel counts,
/// and the arrival-tie / mid-flight-switch cases Hybrid-NN exercises.
#[cfg(test)]
mod equivalence_tests {
    use super::*;
    use crate::task::queue::LinearQueue;
    use crate::AnnMode;
    use proptest::prelude::*;
    use std::sync::Arc;
    use tnn_broadcast::BroadcastParams;
    use tnn_rtree::{PackingAlgorithm, RTree};

    fn build_env(layers: &[Vec<Point>], page: usize, phases: &[u64]) -> MultiChannelEnv {
        let params = BroadcastParams::new(page);
        let trees = layers
            .iter()
            .map(|pts| {
                Arc::new(RTree::build(pts, params.rtree_params(), PackingAlgorithm::Str).unwrap())
            })
            .collect();
        MultiChannelEnv::new(trees, params, phases)
    }

    fn pts_strategy(max: usize) -> impl Strategy<Value = Vec<Point>> {
        prop::collection::vec(
            (0.0f64..1000.0, 0.0f64..1000.0).prop_map(|(x, y)| Point::new(x, y)),
            1..max,
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn heap_and_linear_runs_are_byte_identical(
            s in pts_strategy(220),
            r in pts_strategy(220),
            (ph0, ph1) in (0u64..50_000, 0u64..50_000),
            page in prop::sample::select(vec![64usize, 128]),
            (qx, qy) in (-100.0f64..1100.0, -100.0f64..1100.0),
            issued_at in 0u64..20_000,
            ann_factor in 0.0f64..2.0,
        ) {
            let env = build_env(&[s, r], page, &[ph0, ph1]);
            let p = Point::new(qx, qy);
            let mut heap_scratch = QueryScratch::<ArrivalHeap>::default();
            let mut linear_scratch = QueryScratch::<LinearQueue>::default();
            for alg in Algorithm::ALL {
                for ann in [AnnMode::Exact, AnnMode::Dynamic { factor: ann_factor }] {
                    let cfg = TnnConfig::exact(alg).with_ann_modes(&[ann, ann]);
                    let heap_run =
                        run_query_impl(&env, p, issued_at, &cfg, &mut heap_scratch).unwrap();
                    let linear_run =
                        run_query_impl(&env, p, issued_at, &cfg, &mut linear_scratch).unwrap();
                    prop_assert_eq!(
                        &heap_run, &linear_run,
                        "divergent run for {} / {:?}", alg.name(), ann
                    );
                }
            }
        }

        /// The same backend-equivalence gate over three and four channels
        /// — the generalized event loop and the layered join must be as
        /// backend-independent as the two-channel pipeline.
        #[test]
        fn heap_and_linear_agree_beyond_two_channels(
            layers in prop::collection::vec(pts_strategy(140), 3..5),
            phase_seed in 0u64..60_000,
            (qx, qy) in (0.0f64..1000.0, 0.0f64..1000.0),
            issued_at in 0u64..10_000,
        ) {
            let k = layers.len();
            let phases: Vec<u64> =
                (0..k as u64).map(|i| phase_seed.wrapping_mul(i * i + 1) % 40_000).collect();
            let env = build_env(&layers, 64, &phases);
            let p = Point::new(qx, qy);
            let mut heap_scratch = QueryScratch::<ArrivalHeap>::default();
            let mut linear_scratch = QueryScratch::<LinearQueue>::default();
            for alg in Algorithm::ALL {
                let cfg = TnnConfig::exact_for(alg, k);
                let heap_run =
                    run_query_impl(&env, p, issued_at, &cfg, &mut heap_scratch).unwrap();
                let linear_run =
                    run_query_impl(&env, p, issued_at, &cfg, &mut linear_scratch).unwrap();
                prop_assert_eq!(&heap_run, &linear_run, "k={} {}", k, alg.name());
            }
        }

        /// Small, highly symmetric grids force equal-bound tie cases; the
        /// asymmetric sizes force both Hybrid switch directions.
        #[test]
        fn equivalence_on_tie_heavy_grids(
            side in 2usize..7,
            big in 150usize..400,
            phase in 0u64..10_000,
        ) {
            let grid: Vec<Point> = (0..side * side)
                .map(|i| Point::new((i % side) as f64 * 10.0, (i / side) as f64 * 10.0))
                .collect();
            let cloud: Vec<Point> = (0..big)
                .map(|i| Point::new((i * 37 % 211) as f64, (i * 53 % 223) as f64))
                .collect();
            // Query at the exact grid center: equidistant candidates.
            let p = Point::new((side - 1) as f64 * 5.0, (side - 1) as f64 * 5.0);
            for (s, r) in [(&grid, &cloud), (&cloud, &grid)] {
                let env = build_env(&[s.clone(), r.clone()], 64, &[phase, phase / 2]);
                for alg in Algorithm::ALL {
                    let cfg = TnnConfig::exact(alg);
                    let heap_run = run_query_impl(
                        &env, p, 3, &cfg, &mut QueryScratch::<ArrivalHeap>::default(),
                    )
                    .unwrap();
                    let linear_run = run_query_impl(
                        &env, p, 3, &cfg, &mut QueryScratch::<LinearQueue>::default(),
                    )
                    .unwrap();
                    prop_assert_eq!(&heap_run, &linear_run, "{}", alg.name());
                }
            }
        }
    }

    /// The chained extension uses the same task machinery; spot-check the
    /// heap path against the linear one through the public single-query
    /// entry points.
    #[test]
    fn peak_memory_is_backend_independent() {
        let pts: Vec<Point> = (0..800)
            .map(|i| Point::new((i * 37 % 211) as f64, (i * 53 % 223) as f64))
            .collect();
        let params = BroadcastParams::new(64);
        let tree = RTree::build(&pts, params.rtree_params(), PackingAlgorithm::Str).unwrap();
        let ch = tnn_broadcast::Channel::new(Arc::new(tree), params, 9);
        let q = Point::new(77.0, 133.0);
        let mut heap =
            crate::task::NnSearchTask::new(&ch, SearchMode::Point { q }, AnnMode::Exact, 2);
        let mut linear =
            crate::task::LinearNnSearchTask::new(&ch, SearchMode::Point { q }, AnnMode::Exact, 2);
        heap.run_to_completion();
        linear.run_to_completion();
        assert_eq!(heap.peak_memory(), linear.peak_memory());
        assert_eq!(heap.tuner().pages, linear.tuner().pages);
    }

    /// Empty channels error out on every algorithm and both backends —
    /// the degenerate-input regression for the former
    /// `expect("non-empty S")` panics.
    #[test]
    fn empty_channels_error_on_all_algorithms_and_backends() {
        let params = BroadcastParams::new(64);
        let pts: Vec<Point> = (0..40)
            .map(|i| Point::new((i * 7 % 53) as f64, (i * 11 % 59) as f64))
            .collect();
        let full =
            Arc::new(RTree::build(&pts, params.rtree_params(), PackingAlgorithm::Str).unwrap());
        let empty = Arc::new(RTree::empty(params.rtree_params()));
        for (layout, expect_channel) in [
            (vec![Arc::clone(&empty), Arc::clone(&full)], 0usize),
            (vec![Arc::clone(&full), Arc::clone(&empty)], 1),
            (
                vec![Arc::clone(&full), Arc::clone(&empty), Arc::clone(&full)],
                1,
            ),
        ] {
            let k = layout.len();
            let env = MultiChannelEnv::new(layout, params, &vec![0; k]);
            let p = Point::new(10.0, 10.0);
            for alg in Algorithm::ALL {
                let cfg = TnnConfig::exact_for(alg, k);
                let heap = run_query_impl(
                    &env,
                    p,
                    0,
                    &cfg,
                    &mut QueryScratch::<ArrivalHeap>::default(),
                );
                assert_eq!(
                    heap.unwrap_err(),
                    TnnError::EmptyChannel {
                        channel: expect_channel
                    },
                    "heap backend, {}",
                    alg.name()
                );
                let linear = run_query_impl(
                    &env,
                    p,
                    0,
                    &cfg,
                    &mut QueryScratch::<LinearQueue>::default(),
                );
                assert_eq!(
                    linear.unwrap_err(),
                    TnnError::EmptyChannel {
                        channel: expect_channel
                    },
                    "linear backend, {}",
                    alg.name()
                );
            }
        }
    }

    /// Single-point datasets work on every algorithm (no panic, exact
    /// answer) — the other half of the degenerate-input regression.
    #[test]
    fn single_point_channels_answer_exactly() {
        let params = BroadcastParams::new(64);
        let lone_s = vec![Point::new(10.0, 10.0)];
        let lone_r = vec![Point::new(20.0, 10.0)];
        let env = build_env(&[lone_s, lone_r], 64, &[3, 7]);
        let _ = params;
        for alg in [
            Algorithm::WindowBased,
            Algorithm::DoubleNn,
            Algorithm::HybridNn,
        ] {
            for issued_at in [0u64, 99] {
                let run = run_query_impl(
                    &env,
                    Point::new(0.0, 0.0),
                    issued_at,
                    &TnnConfig::exact(alg),
                    &mut QueryScratch::<ArrivalHeap>::default(),
                )
                .unwrap();
                let pair = run.answer().expect("single-point channels still answer");
                let expect = Point::new(0.0, 0.0).dist(Point::new(10.0, 10.0)) + 10.0;
                assert!((pair.dist - expect).abs() < 1e-9, "{}", alg.name());
            }
        }
    }
}
