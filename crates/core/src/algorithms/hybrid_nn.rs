//! Hybrid-NN-Search (paper §4.2, Algorithm 2).
//!
//! Starts exactly like Double-NN (case 1: both searches from `p` in
//! parallel). When one channel's search finishes while the other still
//! runs, the survivor is re-targeted to shrink the search range:
//!
//! * **Case 2** — the `S` search finishes first with `s = p.NN(S)`: the
//!   `R` search switches its query point from `p` to `s`, finding the
//!   neighbor of `s` on the remaining portion of `R`'s tree.
//! * **Case 3** — the `R` search finishes first with `r = p.NN(R)`: the
//!   `S` search switches to the transitive metric, branch-and-bounding
//!   with `MinTransDist` / `MinMaxTransDist` to find the `s ∈ S`
//!   minimizing `dis(p, s) + dis(s, r)` on the remaining portion.
//!
//! Either way the estimate ends with a feasible pair `(s, r)` and radius
//! `d = dis(p, s) + dis(s, r)`; delayed pruning (§4.2.4) guarantees the
//! re-targeted search still has every candidate it needs.

use super::{run_parallel, Estimate, QueryScratch};
use crate::task::queue::CandidateQueue;
use crate::task::BroadcastNnSearch;
use crate::{SearchMode, TnnConfig};
use tnn_broadcast::PhaseOverlay;
use tnn_geom::Point;

pub(crate) fn estimate<Q: CandidateQueue>(
    overlay: &PhaseOverlay<'_>,
    p: Point,
    issued_at: u64,
    cfg: &TnnConfig,
    scratch: &mut QueryScratch<Q>,
) -> Estimate {
    let (s0, s1) = scratch.nn_pair();
    let mut a = BroadcastNnSearch::with_scratch(
        overlay.view(0),
        SearchMode::Point { q: p },
        cfg.ann[0],
        issued_at,
        s0,
    );
    let mut b = BroadcastNnSearch::with_scratch(
        overlay.view(1),
        SearchMode::Point { q: p },
        cfg.ann[1],
        issued_at,
        s1,
    );
    run_parallel(&mut a, &mut b, |which, finished_best, at, other| {
        match which {
            // Case 2: S finished first — switch R's query point to s.
            0 => {
                if let Some((s_pt, _, _)) = finished_best {
                    other.switch_query_point(s_pt, at);
                }
            }
            // Case 3: R finished first — switch S to the transitive metric.
            _ => {
                if let Some((r_pt, _, _)) = finished_best {
                    other.switch_to_transitive(p, r_pt, at);
                }
            }
        }
    });

    let (s_pt, _, _) = a.best().expect("non-empty S");
    let (r_pt, _, _) = b.best().expect("non-empty R");

    let est = Estimate {
        radius: p.dist(s_pt) + s_pt.dist(r_pt),
        tuners: [*a.tuner(), *b.tuner()],
        end: a.now().max(b.now()),
    };
    a.recycle(s0);
    b.recycle(s1);
    est
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Algorithm;
    use std::sync::Arc;
    use tnn_broadcast::{BroadcastParams, MultiChannelEnv};
    use tnn_rtree::{PackingAlgorithm, RTree};

    fn fresh() -> super::QueryScratch {
        super::QueryScratch::default()
    }

    fn ov(env: &MultiChannelEnv) -> PhaseOverlay<'_> {
        PhaseOverlay::identity(env)
    }

    fn rq(env: &MultiChannelEnv, p: Point, t: u64, cfg: &TnnConfig) -> crate::TnnRun {
        crate::run_query_impl(env, p, t, cfg, &mut fresh()).unwrap()
    }

    fn env(s: &[Point], r: &[Point], phases: [u64; 2]) -> MultiChannelEnv {
        let params = BroadcastParams::new(64);
        let ts = RTree::build(s, params.rtree_params(), PackingAlgorithm::Str).unwrap();
        let tr = RTree::build(r, params.rtree_params(), PackingAlgorithm::Str).unwrap();
        MultiChannelEnv::new(vec![Arc::new(ts), Arc::new(tr)], params, &phases)
    }

    fn grid(n: usize, salt: usize) -> Vec<Point> {
        (0..n)
            .map(|i| {
                Point::new(
                    ((i + salt) * 37 % 211) as f64,
                    ((i + salt) * 53 % 223) as f64,
                )
            })
            .collect()
    }

    #[test]
    fn end_to_end_answer_is_exact_small_s() {
        // Small S, large R → case 2 territory (S finishes first).
        let s = grid(30, 1);
        let r = grid(900, 9);
        let e = env(&s, &r, [3, 55]);
        for (px, py) in [(20.0, 20.0), (150.0, 100.0), (80.0, 210.0)] {
            let p = Point::new(px, py);
            let run = rq(&e, p, 2, &TnnConfig::exact(Algorithm::HybridNn));
            let got = run.answer.expect("hybrid never fails");
            let oracle = crate::exact_tnn(p, e.channel(0).tree(), e.channel(1).tree());
            assert!(
                (got.dist - oracle.dist).abs() < 1e-9,
                "case-2 query {p:?}: got {} expected {}",
                got.dist,
                oracle.dist
            );
        }
    }

    #[test]
    fn end_to_end_answer_is_exact_small_r() {
        // Large S, small R → case 3 territory (R finishes first).
        let s = grid(900, 4);
        let r = grid(30, 13);
        let e = env(&s, &r, [21, 5]);
        for (px, py) in [(10.0, 190.0), (130.0, 60.0)] {
            let p = Point::new(px, py);
            let run = rq(&e, p, 7, &TnnConfig::exact(Algorithm::HybridNn));
            let got = run.answer.expect("hybrid never fails");
            let oracle = crate::exact_tnn(p, e.channel(0).tree(), e.channel(1).tree());
            assert!(
                (got.dist - oracle.dist).abs() < 1e-9,
                "case-3 query {p:?}: got {} expected {}",
                got.dist,
                oracle.dist
            );
        }
    }

    #[test]
    fn hybrid_and_double_have_same_access_pattern_start() {
        // Both algorithms begin identically (case 1); their estimate
        // phases start at the same root arrivals.
        let s = grid(200, 0);
        let r = grid(200, 3);
        let e = env(&s, &r, [0, 9]);
        let p = Point::new(100.0, 100.0);
        let h = estimate(
            &ov(&e),
            p,
            0,
            &TnnConfig::exact(Algorithm::HybridNn),
            &mut fresh(),
        );
        let d = super::super::double_nn::estimate(
            &ov(&e),
            p,
            0,
            &TnnConfig::exact(Algorithm::DoubleNn),
            &mut fresh(),
        );
        // Same estimate end (the paper: "Double-NN and Hybrid-NN always
        // have the same access time") — identical queues, possibly fewer
        // downloads for hybrid after the switch, but the same last
        // arrival governs both unless hybrid prunes the tail, in which
        // case it can only end earlier.
        assert!(h.end <= d.end);
    }

    #[test]
    fn hybrid_radius_never_exceeds_double_radius_case3() {
        // In case 3 hybrid minimizes the transitive distance over the
        // remaining S-tree, which includes the whole tree when the switch
        // happens at the root — its radius is then ≤ Double-NN's.
        // (With partial progress the guarantee is heuristic; we check the
        // strong small-R case where the switch fires immediately.)
        let s = grid(900, 4);
        let r = grid(12, 13);
        let e = env(&s, &r, [50, 0]);
        for (px, py) in [(30.0, 30.0), (170.0, 120.0), (60.0, 200.0)] {
            let p = Point::new(px, py);
            let h = estimate(
                &ov(&e),
                p,
                0,
                &TnnConfig::exact(Algorithm::HybridNn),
                &mut fresh(),
            )
            .radius;
            let d = super::super::double_nn::estimate(
                &ov(&e),
                p,
                0,
                &TnnConfig::exact(Algorithm::DoubleNn),
                &mut fresh(),
            )
            .radius;
            assert!(h <= d + 1e-9, "hybrid {h} > double {d} at {p:?}");
        }
    }

    #[test]
    fn ann_configuration_still_returns_exact_answer() {
        // ANN enlarges the radius but Theorem 1 keeps the answer exact.
        let s = grid(300, 2);
        let r = grid(250, 8);
        let e = env(&s, &r, [7, 19]);
        let p = Point::new(111.0, 99.0);
        let cfg = TnnConfig::exact(Algorithm::HybridNn).with_ann_modes(
            &[crate::AnnMode::Dynamic {
                factor: 1.0 / 150.0,
            }; 2],
        );
        let run = rq(&e, p, 0, &cfg);
        let got = run.answer.unwrap();
        let oracle = crate::exact_tnn(p, e.channel(0).tree(), e.channel(1).tree());
        assert!((got.dist - oracle.dist).abs() < 1e-9);
    }
}
