//! Hybrid-NN-Search (paper §4.2, Algorithm 2), generalized to `k ≥ 2`
//! channels.
//!
//! Starts exactly like Double-NN (case 1: all `k` searches from `p` in
//! parallel). Whenever one hop's search finishes while others still run,
//! the finisher re-targets its still-running **neighbor hops** to shrink
//! their search ranges:
//!
//! * **Case 2, downstream** — hop `i` finishes with `nᵢ`: the hop `i+1`
//!   search re-anchors at `nᵢ` (its query point switches from `p` to
//!   `nᵢ`, or — when a later hop already re-targeted it to the
//!   transitive metric — its source focus moves to `nᵢ`), finding the
//!   neighbor of `nᵢ` on the remaining portion of channel `i+1`'s tree.
//! * **Case 3, upstream** — hop `i` finishes with `nᵢ`: the hop `i−1`
//!   search switches to the transitive metric, branch-and-bounding with
//!   `MinTransDist` / `MinMaxTransDist` to find the point minimizing
//!   `dis(a, s) + dis(s, nᵢ)` on the remaining portion, where `a` is the
//!   hop's current anchor (`p`, or the upstream result that case 2
//!   already re-anchored it to).
//!
//! For `k = 2` exactly one switch can fire and the two rules are the
//! paper's case 2 / case 3 verbatim. Either way the estimate ends with a
//! feasible chain through the hops' final results and radius
//! `d = dis(p, n₁) + Σ dis(nᵢ, nᵢ₊₁)`; delayed pruning (§4.2.4)
//! guarantees every re-targeted search still has every candidate it
//! needs, per hop.

use super::{
    chain_length, harvest_searches, run_interleaved, spawn_parallel_searches, Estimate,
    QueryScratch,
};
use crate::task::queue::CandidateQueue;
use crate::{SearchMode, TnnConfig, TnnError};
use tnn_broadcast::PhaseOverlay;
use tnn_geom::Point;

pub(crate) fn estimate<Q: CandidateQueue>(
    overlay: &PhaseOverlay<'_>,
    p: Point,
    issued_at: u64,
    cfg: &TnnConfig,
    scratch: &mut QueryScratch<Q>,
) -> Result<Estimate, TnnError> {
    let k = overlay.len();
    let mut tasks =
        spawn_parallel_searches(overlay, p, issued_at, |i| cfg.ann[i], scratch.nn_slice(k));
    run_interleaved(&mut tasks, |i, finished_best, at, tasks| {
        let Some((n_i, _, _)) = finished_best else {
            return; // nothing to re-target around (caught as EmptyChannel later)
        };
        // Case 3: the upstream neighbor switches to the transitive metric
        // through its current anchor and the finished hop's result.
        if i > 0 && !tasks[i - 1].is_done() {
            let anchor = tasks[i - 1].mode().anchor();
            tasks[i - 1].switch_to_transitive(anchor, n_i, at);
        }
        // Case 2: the downstream neighbor re-anchors at the finished
        // hop's result, keeping a transitive target if it has one.
        if i + 1 < tasks.len() && !tasks[i + 1].is_done() {
            match tasks[i + 1].mode() {
                SearchMode::Point { .. } => tasks[i + 1].switch_query_point(n_i, at),
                SearchMode::Transitive { r, .. } => tasks[i + 1].switch_to_transitive(n_i, r, at),
            }
        }
    });
    let (nns, tuners, end, hops) = harvest_searches(tasks, scratch.nn_slice(k))?;
    Ok(Estimate {
        radius: chain_length(p, nns.iter().map(|&(pt, _)| pt)),
        tuners,
        end,
        hops,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Algorithm;
    use std::sync::Arc;
    use tnn_broadcast::{BroadcastParams, MultiChannelEnv};
    use tnn_rtree::{PackingAlgorithm, RTree};

    fn fresh() -> super::QueryScratch {
        super::QueryScratch::default()
    }

    fn ov(env: &MultiChannelEnv) -> PhaseOverlay<'_> {
        PhaseOverlay::identity(env)
    }

    fn rq(env: &MultiChannelEnv, p: Point, t: u64, cfg: &TnnConfig) -> crate::TnnRun {
        crate::run_query_impl(env, p, t, cfg, &mut fresh()).unwrap()
    }

    fn env(s: &[Point], r: &[Point], phases: [u64; 2]) -> MultiChannelEnv {
        let params = BroadcastParams::new(64);
        let ts = RTree::build(s, params.rtree_params(), PackingAlgorithm::Str).unwrap();
        let tr = RTree::build(r, params.rtree_params(), PackingAlgorithm::Str).unwrap();
        MultiChannelEnv::new(vec![Arc::new(ts), Arc::new(tr)], params, &phases)
    }

    fn env_k(layers: &[Vec<Point>], phases: &[u64]) -> MultiChannelEnv {
        let params = BroadcastParams::new(64);
        let trees = layers
            .iter()
            .map(|pts| {
                Arc::new(RTree::build(pts, params.rtree_params(), PackingAlgorithm::Str).unwrap())
            })
            .collect();
        MultiChannelEnv::new(trees, params, phases)
    }

    fn grid(n: usize, salt: usize) -> Vec<Point> {
        (0..n)
            .map(|i| {
                Point::new(
                    ((i + salt) * 37 % 211) as f64,
                    ((i + salt) * 53 % 223) as f64,
                )
            })
            .collect()
    }

    #[test]
    fn end_to_end_answer_is_exact_small_s() {
        // Small S, large R → case 2 territory (S finishes first).
        let s = grid(30, 1);
        let r = grid(900, 9);
        let e = env(&s, &r, [3, 55]);
        for (px, py) in [(20.0, 20.0), (150.0, 100.0), (80.0, 210.0)] {
            let p = Point::new(px, py);
            let run = rq(&e, p, 2, &TnnConfig::exact(Algorithm::HybridNn));
            let got = run.answer().expect("hybrid never fails");
            let oracle = crate::exact_tnn(p, e.channel(0).tree(), e.channel(1).tree());
            assert!(
                (got.dist - oracle.dist).abs() < 1e-9,
                "case-2 query {p:?}: got {} expected {}",
                got.dist,
                oracle.dist
            );
        }
    }

    #[test]
    fn end_to_end_answer_is_exact_small_r() {
        // Large S, small R → case 3 territory (R finishes first).
        let s = grid(900, 4);
        let r = grid(30, 13);
        let e = env(&s, &r, [21, 5]);
        for (px, py) in [(10.0, 190.0), (130.0, 60.0)] {
            let p = Point::new(px, py);
            let run = rq(&e, p, 7, &TnnConfig::exact(Algorithm::HybridNn));
            let got = run.answer().expect("hybrid never fails");
            let oracle = crate::exact_tnn(p, e.channel(0).tree(), e.channel(1).tree());
            assert!(
                (got.dist - oracle.dist).abs() < 1e-9,
                "case-3 query {p:?}: got {} expected {}",
                got.dist,
                oracle.dist
            );
        }
    }

    #[test]
    fn three_channel_retargeting_stays_exact() {
        // A tiny middle hop finishes first, re-targeting both neighbors
        // (upstream goes transitive, downstream re-anchors); asymmetric
        // outer hops then finish in either order. The answer must still
        // match the chain oracle.
        let layouts: [[usize; 3]; 3] = [[700, 20, 500], [25, 600, 700], [650, 550, 18]];
        for (case, sizes) in layouts.iter().enumerate() {
            let layers: Vec<Vec<Point>> = sizes
                .iter()
                .enumerate()
                .map(|(i, &n)| grid(n, 3 * i + 1))
                .collect();
            let e = env_k(&layers, &[40, 3, 17]);
            for (px, py) in [(10.0, 10.0), (140.0, 90.0)] {
                let p = Point::new(px, py);
                let run = rq(&e, p, 1, &TnnConfig::exact_for(Algorithm::HybridNn, 3));
                let trees: Vec<&RTree> = e.channels().iter().map(|c| c.tree()).collect();
                let (_, oracle_total) = crate::exact_chain_tnn(p, &trees);
                let got = run.total_dist.expect("hybrid never fails");
                assert!(
                    (got - oracle_total).abs() < 1e-9,
                    "case {case} query {p:?}: got {got} expected {oracle_total}"
                );
            }
        }
    }

    #[test]
    fn four_channel_hybrid_matches_double_answers() {
        // The re-targeting is a cost optimization; both algorithms must
        // return the same (exact) chain totals at k = 4.
        let layers: Vec<Vec<Point>> = (0..4).map(|i| grid(150 + 60 * i, 7 * i + 2)).collect();
        let e = env_k(&layers, &[1, 22, 333, 4_444]);
        for (px, py) in [(55.0, 66.0), (190.0, 20.0)] {
            let p = Point::new(px, py);
            let hybrid = rq(&e, p, 0, &TnnConfig::exact_for(Algorithm::HybridNn, 4));
            let double = rq(&e, p, 0, &TnnConfig::exact_for(Algorithm::DoubleNn, 4));
            assert!(
                (hybrid.total_dist.unwrap() - double.total_dist.unwrap()).abs() < 1e-9,
                "query {p:?}"
            );
        }
    }

    #[test]
    fn hybrid_and_double_have_same_access_pattern_start() {
        // Both algorithms begin identically (case 1); their estimate
        // phases start at the same root arrivals.
        let s = grid(200, 0);
        let r = grid(200, 3);
        let e = env(&s, &r, [0, 9]);
        let p = Point::new(100.0, 100.0);
        let h = estimate(
            &ov(&e),
            p,
            0,
            &TnnConfig::exact(Algorithm::HybridNn),
            &mut fresh(),
        )
        .unwrap();
        let d = super::super::double_nn::estimate(
            &ov(&e),
            p,
            0,
            &TnnConfig::exact(Algorithm::DoubleNn),
            &mut fresh(),
        )
        .unwrap();
        // Same estimate end (the paper: "Double-NN and Hybrid-NN always
        // have the same access time") — identical queues, possibly fewer
        // downloads for hybrid after the switch, but the same last
        // arrival governs both unless hybrid prunes the tail, in which
        // case it can only end earlier.
        assert!(h.end <= d.end);
    }

    #[test]
    fn hybrid_radius_never_exceeds_double_radius_case3() {
        // In case 3 hybrid minimizes the transitive distance over the
        // remaining S-tree, which includes the whole tree when the switch
        // happens at the root — its radius is then ≤ Double-NN's.
        // (With partial progress the guarantee is heuristic; we check the
        // strong small-R case where the switch fires immediately.)
        let s = grid(900, 4);
        let r = grid(12, 13);
        let e = env(&s, &r, [50, 0]);
        for (px, py) in [(30.0, 30.0), (170.0, 120.0), (60.0, 200.0)] {
            let p = Point::new(px, py);
            let h = estimate(
                &ov(&e),
                p,
                0,
                &TnnConfig::exact(Algorithm::HybridNn),
                &mut fresh(),
            )
            .unwrap()
            .radius;
            let d = super::super::double_nn::estimate(
                &ov(&e),
                p,
                0,
                &TnnConfig::exact(Algorithm::DoubleNn),
                &mut fresh(),
            )
            .unwrap()
            .radius;
            assert!(h <= d + 1e-9, "hybrid {h} > double {d} at {p:?}");
        }
    }

    #[test]
    fn ann_configuration_still_returns_exact_answer() {
        // ANN enlarges the radius but Theorem 1 keeps the answer exact.
        let s = grid(300, 2);
        let r = grid(250, 8);
        let e = env(&s, &r, [7, 19]);
        let p = Point::new(111.0, 99.0);
        let cfg = TnnConfig::exact(Algorithm::HybridNn).with_ann_modes(
            &[crate::AnnMode::Dynamic {
                factor: 1.0 / 150.0,
            }; 2],
        );
        let run = rq(&e, p, 0, &cfg);
        let got = run.answer().unwrap();
        let oracle = crate::exact_tnn(p, e.channel(0).tree(), e.channel(1).tree());
        assert!((got.dist - oracle.dist).abs() < 1e-9);
    }
}
