//! Approximate-TNN-Search [19] (paper §3.1, eq. 1), generalized to
//! `k ≥ 2` channels.
//!
//! Skips the estimate-phase index searches entirely: the search radius is
//! computed locally from the dataset cardinalities under a uniformity
//! assumption,
//!
//! ```text
//! r_k(S) = ln(n) · sqrt(k / (π·n)),   n = |S|   (unit square)
//! d      = Σᵢ r₁(Sᵢ)                  (scaled to the actual region)
//! ```
//!
//! — each hop of the route contributes its dataset's expected
//! nearest-neighbor radius, so for two channels this is the paper's
//! `d = r₁(S) + r₁(R)` exactly. This gives the best possible access time
//! (the filter phase starts immediately) but the range is **not
//! guaranteed** to contain the answer — on skewed datasets the query
//! fails (paper §6.3, Table 3) — and on uniform data the range is
//! unnecessarily large, inflating tune-in time (§6.1.2, Fig. 11(d)).

use super::{Estimate, HopStats, HopStatsVec, TunerVec};
use tnn_broadcast::{MultiChannelEnv, Tuner};
use tnn_geom::Rect;

/// The paper's eq. 1 in the unit square: the radius around a random point
/// expected to enclose at least `k` objects of an `n`-object uniform
/// dataset.
pub fn approximate_radius(n: usize, k: usize) -> f64 {
    if n == 0 {
        return 0.0;
    }
    let n = n as f64;
    (n.ln()).max(0.0) * (k as f64 / (std::f64::consts::PI * n)).sqrt()
}

/// The Approximate-TNN search radius for a `k`-channel environment:
/// `d = Σᵢ r₁(Sᵢ)`, scaled from the unit square to the broadcast region
/// (the union of every dataset's bounding rectangle — the client knows
/// region and cardinalities a priori from the broadcast metadata; no page
/// needs to be downloaded).
pub fn approximate_radius_for_env(env: &MultiChannelEnv) -> f64 {
    let region = env
        .channels()
        .iter()
        .map(|c| c.tree().bounding_rect())
        .reduce(|a: Rect, b| a.union(&b))
        .expect("environments hold at least one channel");
    // "The radius can be easily scaled to a square of other size": eq. 1
    // is derived for the unit square, so scale by the region's side.
    let side = region.area().sqrt();
    let unit_radius: f64 = env
        .channels()
        .iter()
        .map(|c| approximate_radius(c.tree().num_objects(), 1))
        .sum();
    unit_radius * side
}

pub(crate) fn estimate(env: &MultiChannelEnv, issued_at: u64) -> Estimate {
    let mut tuners = TunerVec::new();
    let mut hops = HopStatsVec::new();
    for _ in 0..env.len() {
        tuners.push(Tuner::new());
        hops.push(HopStats::default());
    }
    Estimate {
        radius: approximate_radius_for_env(env),
        tuners,
        end: issued_at, // purely local computation; nothing on air
        hops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_query_impl, Algorithm, QueryScratch, TnnConfig};
    use std::sync::Arc;
    use tnn_broadcast::BroadcastParams;
    use tnn_geom::Point;
    use tnn_rtree::{PackingAlgorithm, RTree};

    fn env_k(layers: &[Vec<Point>]) -> MultiChannelEnv {
        let params = BroadcastParams::new(64);
        let trees = layers
            .iter()
            .map(|pts| {
                Arc::new(RTree::build(pts, params.rtree_params(), PackingAlgorithm::Str).unwrap())
            })
            .collect();
        MultiChannelEnv::new(trees, params, &vec![0; layers.len()])
    }

    fn env(s: &[Point], r: &[Point]) -> MultiChannelEnv {
        env_k(&[s.to_vec(), r.to_vec()])
    }

    fn uniformish(n: usize, salt: usize, side: f64) -> Vec<Point> {
        (0..n)
            .map(|i| {
                let a = ((i + salt) as u64).wrapping_mul(0x9E3779B97F4A7C15);
                let x = (a >> 32) as f64 / u32::MAX as f64 * side;
                let y = (a & 0xFFFF_FFFF) as f64 / u32::MAX as f64 * side;
                Point::new(x, y)
            })
            .collect()
    }

    #[test]
    fn radius_formula_matches_eq1() {
        // n = 10,000, k = 1: ln(10⁴)·sqrt(1/(π·10⁴)).
        let got = approximate_radius(10_000, 1);
        let expect = (10_000f64).ln() * (1.0 / (std::f64::consts::PI * 10_000.0)).sqrt();
        assert!((got - expect).abs() < 1e-12);
        // Radius shrinks with density (larger n).
        assert!(approximate_radius(100_000, 1) < approximate_radius(1_000, 1));
        // More required neighbors → larger radius.
        assert!(approximate_radius(1_000, 4) > approximate_radius(1_000, 1));
        // Degenerate cases.
        assert_eq!(approximate_radius(0, 1), 0.0);
        assert_eq!(approximate_radius(1, 1), 0.0);
    }

    #[test]
    fn env_radius_sums_per_channel_terms() {
        let layers = vec![
            uniformish(500, 0, 1000.0),
            uniformish(400, 9, 1000.0),
            uniformish(300, 17, 1000.0),
        ];
        let e3 = env_k(&layers);
        let region = layers
            .iter()
            .flat_map(|l| l.iter().copied())
            .collect::<Vec<_>>();
        let side = Rect::bounding(&region).unwrap().area().sqrt();
        let expect =
            (approximate_radius(500, 1) + approximate_radius(400, 1) + approximate_radius(300, 1))
                * side;
        assert!((approximate_radius_for_env(&e3) - expect).abs() < 1e-9 * expect.max(1.0));
    }

    #[test]
    fn estimate_has_no_air_cost() {
        let s = uniformish(500, 0, 1000.0);
        let r = uniformish(400, 9, 1000.0);
        let e = env(&s, &r);
        let est = estimate(&e, 77);
        assert_eq!(est.end, 77);
        assert_eq!(est.tuners.len(), 2);
        assert_eq!(est.tuners[0].pages, 0);
        assert_eq!(est.tuners[1].pages, 0);
        assert!(est.radius > 0.0);
    }

    #[test]
    fn succeeds_on_uniform_data() {
        let s = uniformish(800, 1, 1000.0);
        let r = uniformish(700, 5, 1000.0);
        let e = env(&s, &r);
        let p = Point::new(500.0, 500.0);
        let run = run_query_impl(
            &e,
            p,
            0,
            &TnnConfig::exact(Algorithm::ApproximateTnn),
            &mut QueryScratch::<crate::ArrivalHeap>::default(),
        )
        .unwrap();
        let got = run.answer().expect("uniform data should succeed");
        let oracle = crate::exact_tnn(p, e.channel(0).tree(), e.channel(1).tree());
        assert!((got.dist - oracle.dist).abs() < 1e-9);
    }

    #[test]
    fn succeeds_on_uniform_three_channel_data() {
        let layers = vec![
            uniformish(700, 2, 1000.0),
            uniformish(600, 6, 1000.0),
            uniformish(800, 10, 1000.0),
        ];
        let e = env_k(&layers);
        let p = Point::new(480.0, 510.0);
        let run = run_query_impl(
            &e,
            p,
            0,
            &TnnConfig::exact_for(Algorithm::ApproximateTnn, 3),
            &mut QueryScratch::<crate::ArrivalHeap>::default(),
        )
        .unwrap();
        assert!(!run.failed(), "uniform data should succeed");
        let trees: Vec<&RTree> = e.channels().iter().map(|c| c.tree()).collect();
        let (_, oracle_total) = crate::exact_chain_tnn(p, &trees);
        assert!((run.total_dist.unwrap() - oracle_total).abs() < 1e-9);
    }

    #[test]
    fn fails_or_errs_on_extreme_skew() {
        // All mass in one far corner; the uniformity-based radius around a
        // far-away query point encloses nothing.
        let s: Vec<Point> = (0..200)
            .map(|i| Point::new(9_990.0 + (i % 10) as f64, 9_990.0 + (i / 10 % 10) as f64))
            .collect();
        let r = s.clone();
        let e = env(&s, &r);
        let p = Point::new(10.0, 10.0);
        let run = run_query_impl(
            &e,
            p,
            0,
            &TnnConfig::exact(Algorithm::ApproximateTnn),
            &mut QueryScratch::<crate::ArrivalHeap>::default(),
        )
        .unwrap();
        // The candidate sets are empty → the query fails outright.
        assert!(run.failed());
        assert_eq!(run.candidates, vec![0, 0]);
    }
}
