//! Approximate-TNN-Search [19] (paper §3.1, eq. 1).
//!
//! Skips the estimate-phase index searches entirely: the search radius is
//! computed locally from the dataset cardinalities under a uniformity
//! assumption,
//!
//! ```text
//! r_k(S) = ln(n) · sqrt(k / (π·n)),   n = |S|   (unit square)
//! d      = r₁(S) + r₁(R)              (scaled to the actual region)
//! ```
//!
//! This gives the best possible access time (the filter phase starts
//! immediately) but the range is **not guaranteed** to contain the answer
//! — on skewed datasets the query fails (paper §6.3, Table 3) — and on
//! uniform data the range is unnecessarily large, inflating tune-in time
//! (§6.1.2, Fig. 11(d)).

use super::Estimate;
use tnn_broadcast::{MultiChannelEnv, Tuner};

/// The paper's eq. 1 in the unit square: the radius around a random point
/// expected to enclose at least `k` objects of an `n`-object uniform
/// dataset.
pub fn approximate_radius(n: usize, k: usize) -> f64 {
    if n == 0 {
        return 0.0;
    }
    let n = n as f64;
    (n.ln()).max(0.0) * (k as f64 / (std::f64::consts::PI * n)).sqrt()
}

/// The Approximate-TNN search radius for a two-channel environment:
/// `d = r₁(S) + r₁(R)`, scaled from the unit square to the broadcast
/// region (the client knows region and cardinalities a priori from the
/// broadcast metadata; no page needs to be downloaded).
pub fn approximate_radius_for_env(env: &MultiChannelEnv) -> f64 {
    let region = env
        .channel(0)
        .tree()
        .bounding_rect()
        .union(&env.channel(1).tree().bounding_rect());
    // "The radius can be easily scaled to a square of other size": eq. 1
    // is derived for the unit square, so scale by the region's side.
    let side = region.area().sqrt();
    let r_s = approximate_radius(env.channel(0).tree().num_objects(), 1);
    let r_r = approximate_radius(env.channel(1).tree().num_objects(), 1);
    (r_s + r_r) * side
}

pub(crate) fn estimate(env: &MultiChannelEnv, issued_at: u64) -> Estimate {
    Estimate {
        radius: approximate_radius_for_env(env),
        tuners: [Tuner::new(), Tuner::new()],
        end: issued_at, // purely local computation; nothing on air
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_query_impl, Algorithm, QueryScratch, TnnConfig};
    use std::sync::Arc;
    use tnn_broadcast::BroadcastParams;
    use tnn_geom::Point;
    use tnn_rtree::{PackingAlgorithm, RTree};

    fn env(s: &[Point], r: &[Point]) -> MultiChannelEnv {
        let params = BroadcastParams::new(64);
        let ts = RTree::build(s, params.rtree_params(), PackingAlgorithm::Str).unwrap();
        let tr = RTree::build(r, params.rtree_params(), PackingAlgorithm::Str).unwrap();
        MultiChannelEnv::new(vec![Arc::new(ts), Arc::new(tr)], params, &[0, 0])
    }

    fn uniformish(n: usize, salt: usize, side: f64) -> Vec<Point> {
        (0..n)
            .map(|i| {
                let a = ((i + salt) as u64).wrapping_mul(0x9E3779B97F4A7C15);
                let x = (a >> 32) as f64 / u32::MAX as f64 * side;
                let y = (a & 0xFFFF_FFFF) as f64 / u32::MAX as f64 * side;
                Point::new(x, y)
            })
            .collect()
    }

    #[test]
    fn radius_formula_matches_eq1() {
        // n = 10,000, k = 1: ln(10⁴)·sqrt(1/(π·10⁴)).
        let got = approximate_radius(10_000, 1);
        let expect = (10_000f64).ln() * (1.0 / (std::f64::consts::PI * 10_000.0)).sqrt();
        assert!((got - expect).abs() < 1e-12);
        // Radius shrinks with density (larger n).
        assert!(approximate_radius(100_000, 1) < approximate_radius(1_000, 1));
        // More required neighbors → larger radius.
        assert!(approximate_radius(1_000, 4) > approximate_radius(1_000, 1));
        // Degenerate cases.
        assert_eq!(approximate_radius(0, 1), 0.0);
        assert_eq!(approximate_radius(1, 1), 0.0);
    }

    #[test]
    fn estimate_has_no_air_cost() {
        let s = uniformish(500, 0, 1000.0);
        let r = uniformish(400, 9, 1000.0);
        let e = env(&s, &r);
        let est = estimate(&e, 77);
        assert_eq!(est.end, 77);
        assert_eq!(est.tuners[0].pages, 0);
        assert_eq!(est.tuners[1].pages, 0);
        assert!(est.radius > 0.0);
    }

    #[test]
    fn succeeds_on_uniform_data() {
        let s = uniformish(800, 1, 1000.0);
        let r = uniformish(700, 5, 1000.0);
        let e = env(&s, &r);
        let p = Point::new(500.0, 500.0);
        let run = run_query_impl(
            &e,
            p,
            0,
            &TnnConfig::exact(Algorithm::ApproximateTnn),
            &mut QueryScratch::<crate::ArrivalHeap>::default(),
        )
        .unwrap();
        let got = run.answer.expect("uniform data should succeed");
        let oracle = crate::exact_tnn(p, e.channel(0).tree(), e.channel(1).tree());
        assert!((got.dist - oracle.dist).abs() < 1e-9);
    }

    #[test]
    fn fails_or_errs_on_extreme_skew() {
        // All mass in one far corner; the uniformity-based radius around a
        // far-away query point encloses nothing.
        let s: Vec<Point> = (0..200)
            .map(|i| Point::new(9_990.0 + (i % 10) as f64, 9_990.0 + (i / 10 % 10) as f64))
            .collect();
        let r = s.clone();
        let e = env(&s, &r);
        let p = Point::new(10.0, 10.0);
        let run = run_query_impl(
            &e,
            p,
            0,
            &TnnConfig::exact(Algorithm::ApproximateTnn),
            &mut QueryScratch::<crate::ArrivalHeap>::default(),
        )
        .unwrap();
        // The candidate sets are empty → the query fails outright.
        assert!(run.failed());
        assert_eq!(run.candidates, [0, 0]);
    }
}
