//! Window-Based-TNN-Search [19], adapted to the multi-channel
//! environment (paper §3.1) and generalized to `k ≥ 2` channels.
//!
//! Estimate phase — **sequential**: find `n₁ = p.NN(S₁)` on channel 1,
//! then `n₂ = n₁.NN(S₂)` on channel 2, and so on down the hops (each
//! query cannot start before its predecessor finishes, which is exactly
//! the deficiency §3.2 calls out — and it compounds with `k`); radius
//! `d = dis(p, n₁) + Σ dis(nᵢ, nᵢ₊₁)`. The filter phase runs on all
//! channels in parallel (the adaptation to simultaneous access).

use super::{Estimate, HopStats, HopStatsVec, QueryScratch, TunerVec};
use crate::task::queue::CandidateQueue;
use crate::task::BroadcastNnSearch;
use crate::{SearchMode, TnnConfig, TnnError};
use tnn_broadcast::PhaseOverlay;
use tnn_geom::Point;

pub(crate) fn estimate<Q: CandidateQueue>(
    overlay: &PhaseOverlay<'_>,
    p: Point,
    issued_at: u64,
    cfg: &TnnConfig,
    scratch: &mut QueryScratch<Q>,
) -> Result<Estimate, TnnError> {
    let k = overlay.len();
    let mut tuners = TunerVec::new();
    let mut hops = HopStatsVec::new();
    let mut radius = 0.0;
    let mut from = p;
    let mut now = issued_at;
    let mut end = issued_at;
    for (i, nn_scratch) in scratch.nn_slice(k).iter_mut().enumerate() {
        // Hop i: nᵢ = n_{i−1}.NN(Sᵢ), starting only after hop i−1
        // finished.
        let mut task = BroadcastNnSearch::with_scratch(
            overlay.view(i),
            SearchMode::Point { q: from },
            cfg.ann[i],
            now,
            nn_scratch,
        );
        now = task.run_to_completion();
        end = end.max(now);
        let best = task.best();
        tuners.push(*task.tuner());
        hops.push(HopStats {
            peak_queue: task.peak_memory() as u64,
            prune_hits: task.parked_len() as u64,
        });
        task.recycle(nn_scratch);
        let (pt, _, _) = best.ok_or(TnnError::EmptyChannel { channel: i })?;
        // d accumulates the hop legs: dis(p, n₁) + Σ dis(nᵢ, nᵢ₊₁).
        radius += from.dist(pt);
        from = pt;
    }

    Ok(Estimate {
        radius,
        tuners,
        end,
        hops,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Algorithm;
    use std::sync::Arc;
    use tnn_broadcast::{BroadcastParams, MultiChannelEnv};
    use tnn_rtree::{PackingAlgorithm, RTree};

    fn fresh() -> super::QueryScratch {
        super::QueryScratch::default()
    }

    fn ov(env: &MultiChannelEnv) -> PhaseOverlay<'_> {
        PhaseOverlay::identity(env)
    }

    fn env(s: &[Point], r: &[Point]) -> MultiChannelEnv {
        let params = BroadcastParams::new(64);
        let ts = RTree::build(s, params.rtree_params(), PackingAlgorithm::Str).unwrap();
        let tr = RTree::build(r, params.rtree_params(), PackingAlgorithm::Str).unwrap();
        MultiChannelEnv::new(vec![Arc::new(ts), Arc::new(tr)], params, &[5, 42])
    }

    fn env_k(layers: &[Vec<Point>], phases: &[u64]) -> MultiChannelEnv {
        let params = BroadcastParams::new(64);
        let trees = layers
            .iter()
            .map(|pts| {
                Arc::new(RTree::build(pts, params.rtree_params(), PackingAlgorithm::Str).unwrap())
            })
            .collect();
        MultiChannelEnv::new(trees, params, phases)
    }

    fn grid(n: usize, salt: usize) -> Vec<Point> {
        (0..n)
            .map(|i| {
                Point::new(
                    ((i + salt) * 37 % 211) as f64,
                    ((i + salt) * 53 % 223) as f64,
                )
            })
            .collect()
    }

    #[test]
    fn radius_is_window_based_formula() {
        let s = grid(120, 0);
        let r = grid(150, 7);
        let e = env(&s, &r);
        let p = Point::new(100.0, 100.0);
        let est = estimate(
            &ov(&e),
            p,
            0,
            &TnnConfig::exact(Algorithm::WindowBased),
            &mut fresh(),
        )
        .unwrap();
        // s* = p's true NN in S; r* = s*'s true NN in R.
        let s_star = s
            .iter()
            .min_by(|a, b| p.dist(**a).total_cmp(&p.dist(**b)))
            .unwrap();
        let r_star = r
            .iter()
            .min_by(|a, b| s_star.dist(**a).total_cmp(&s_star.dist(**b)))
            .unwrap();
        let expect = p.dist(*s_star) + s_star.dist(*r_star);
        assert!((est.radius - expect).abs() < 1e-9);
    }

    #[test]
    fn k_ary_radius_walks_greedy_nn_hops() {
        let layers = vec![grid(90, 3), grid(120, 11), grid(70, 29)];
        let e = env_k(&layers, &[5, 42, 7]);
        let p = Point::new(60.0, 140.0);
        let est = estimate(
            &ov(&e),
            p,
            0,
            &TnnConfig::exact_for(Algorithm::WindowBased, 3),
            &mut fresh(),
        )
        .unwrap();
        let mut expect = 0.0;
        let mut from = p;
        for layer in &layers {
            let nn = layer
                .iter()
                .min_by(|a, b| from.dist(**a).total_cmp(&from.dist(**b)))
                .unwrap();
            expect += from.dist(*nn);
            from = *nn;
        }
        assert!((est.radius - expect).abs() < 1e-9);
    }

    #[test]
    fn second_search_starts_after_first() {
        let s = grid(200, 0);
        let r = grid(200, 3);
        let e = env(&s, &r);
        let p = Point::new(50.0, 60.0);
        let est = estimate(
            &ov(&e),
            p,
            11,
            &TnnConfig::exact(Algorithm::WindowBased),
            &mut fresh(),
        )
        .unwrap();
        // Channel 1's estimate pages can only have been downloaded after
        // channel 0 finished; its tuner finish time must exceed channel
        // 0's.
        let f0 = est.tuners[0].finish_time.unwrap();
        let f1 = est.tuners[1].finish_time.unwrap();
        assert!(f1 > f0);
    }

    #[test]
    fn hop_finishes_are_strictly_ordered_at_k3() {
        let layers = vec![grid(150, 1), grid(150, 5), grid(150, 9)];
        let e = env_k(&layers, &[0, 0, 0]);
        let est = estimate(
            &ov(&e),
            Point::new(80.0, 80.0),
            0,
            &TnnConfig::exact_for(Algorithm::WindowBased, 3),
            &mut fresh(),
        )
        .unwrap();
        let f: Vec<u64> = est.tuners.iter().map(|t| t.finish_time.unwrap()).collect();
        assert!(f[0] < f[1] && f[1] < f[2], "sequential hops: {f:?}");
    }

    #[test]
    fn end_to_end_answer_is_exact() {
        let s = grid(150, 1);
        let r = grid(180, 9);
        let e = env(&s, &r);
        let p = Point::new(120.0, 80.0);
        let run = crate::run_query_impl(
            &e,
            p,
            0,
            &TnnConfig::exact(Algorithm::WindowBased),
            &mut fresh(),
        )
        .unwrap();
        let got = run.answer().expect("window-based never fails");
        let oracle = crate::exact_tnn(p, e.channel(0).tree(), e.channel(1).tree());
        assert!((got.dist - oracle.dist).abs() < 1e-9);
    }
}
