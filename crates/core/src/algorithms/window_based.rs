//! Window-Based-TNN-Search [19], adapted to the multi-channel
//! environment (paper §3.1).
//!
//! Estimate phase — **sequential**: first find `s = p.NN(S)` on channel
//! 1, then `r = s.NN(R)` on channel 2 (the second query cannot start
//! before the first finishes, which is exactly the deficiency §3.2 calls
//! out); radius `d = dis(p, s) + dis(s, r)`. The filter phase runs on
//! both channels in parallel (the adaptation to simultaneous access).

use super::{Estimate, QueryScratch};
use crate::task::queue::CandidateQueue;
use crate::task::BroadcastNnSearch;
use crate::{SearchMode, TnnConfig};
use tnn_broadcast::PhaseOverlay;
use tnn_geom::Point;

pub(crate) fn estimate<Q: CandidateQueue>(
    overlay: &PhaseOverlay<'_>,
    p: Point,
    issued_at: u64,
    cfg: &TnnConfig,
    scratch: &mut QueryScratch<Q>,
) -> Estimate {
    let (s0, s1) = scratch.nn_pair();
    // First NN query: s = p.NN(S) on channel 0.
    let mut nn1 = BroadcastNnSearch::with_scratch(
        overlay.view(0),
        SearchMode::Point { q: p },
        cfg.ann[0],
        issued_at,
        s0,
    );
    let t1 = nn1.run_to_completion();
    let (s_pt, _, _) = nn1
        .best()
        .expect("NN search over a non-empty tree always yields a point");

    // Second NN query: r = s.NN(R) on channel 1, starting only after the
    // first finished.
    let mut nn2 = BroadcastNnSearch::with_scratch(
        overlay.view(1),
        SearchMode::Point { q: s_pt },
        cfg.ann[1],
        t1,
        s1,
    );
    let t2 = nn2.run_to_completion();
    let (r_pt, _, _) = nn2
        .best()
        .expect("NN search over a non-empty tree always yields a point");

    let est = Estimate {
        radius: p.dist(s_pt) + s_pt.dist(r_pt),
        tuners: [*nn1.tuner(), *nn2.tuner()],
        end: t1.max(t2),
    };
    nn1.recycle(s0);
    nn2.recycle(s1);
    est
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Algorithm;
    use std::sync::Arc;
    use tnn_broadcast::{BroadcastParams, MultiChannelEnv};
    use tnn_rtree::{PackingAlgorithm, RTree};

    fn fresh() -> super::QueryScratch {
        super::QueryScratch::default()
    }

    fn ov(env: &MultiChannelEnv) -> PhaseOverlay<'_> {
        PhaseOverlay::identity(env)
    }

    fn env(s: &[Point], r: &[Point]) -> MultiChannelEnv {
        let params = BroadcastParams::new(64);
        let ts = RTree::build(s, params.rtree_params(), PackingAlgorithm::Str).unwrap();
        let tr = RTree::build(r, params.rtree_params(), PackingAlgorithm::Str).unwrap();
        MultiChannelEnv::new(vec![Arc::new(ts), Arc::new(tr)], params, &[5, 42])
    }

    fn grid(n: usize, salt: usize) -> Vec<Point> {
        (0..n)
            .map(|i| {
                Point::new(
                    ((i + salt) * 37 % 211) as f64,
                    ((i + salt) * 53 % 223) as f64,
                )
            })
            .collect()
    }

    #[test]
    fn radius_is_window_based_formula() {
        let s = grid(120, 0);
        let r = grid(150, 7);
        let e = env(&s, &r);
        let p = Point::new(100.0, 100.0);
        let est = estimate(
            &ov(&e),
            p,
            0,
            &TnnConfig::exact(Algorithm::WindowBased),
            &mut fresh(),
        );
        // s* = p's true NN in S; r* = s*'s true NN in R.
        let s_star = s
            .iter()
            .min_by(|a, b| p.dist(**a).total_cmp(&p.dist(**b)))
            .unwrap();
        let r_star = r
            .iter()
            .min_by(|a, b| s_star.dist(**a).total_cmp(&s_star.dist(**b)))
            .unwrap();
        let expect = p.dist(*s_star) + s_star.dist(*r_star);
        assert!((est.radius - expect).abs() < 1e-9);
    }

    #[test]
    fn second_search_starts_after_first() {
        let s = grid(200, 0);
        let r = grid(200, 3);
        let e = env(&s, &r);
        let p = Point::new(50.0, 60.0);
        let est = estimate(
            &ov(&e),
            p,
            11,
            &TnnConfig::exact(Algorithm::WindowBased),
            &mut fresh(),
        );
        // Channel 1's estimate pages can only have been downloaded after
        // channel 0 finished; its tuner finish time must exceed channel
        // 0's.
        let f0 = est.tuners[0].finish_time.unwrap();
        let f1 = est.tuners[1].finish_time.unwrap();
        assert!(f1 > f0);
    }

    #[test]
    fn end_to_end_answer_is_exact() {
        let s = grid(150, 1);
        let r = grid(180, 9);
        let e = env(&s, &r);
        let p = Point::new(120.0, 80.0);
        let run = crate::run_query_impl(
            &e,
            p,
            0,
            &TnnConfig::exact(Algorithm::WindowBased),
            &mut fresh(),
        )
        .unwrap();
        let got = run.answer.expect("window-based never fails");
        let oracle = crate::exact_tnn(p, e.channel(0).tree(), e.channel(1).tree());
        assert!((got.dist - oracle.dist).abs() < 1e-9);
    }
}
