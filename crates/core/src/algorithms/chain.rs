//! Chained (generalized) TNN over `k ≥ 2` datasets — the paper's
//! future-work item 1 ("more than 2 datasets are involved, and allocated
//! on multiple wireless channels").
//!
//! Finds the chain `p → s₁ → s₂ → … → s_k` with `sᵢ ∈ Sᵢ` (categories
//! visited in the given order, one dataset per channel) of minimum total
//! length.
//!
//! The estimate phase generalizes Double-NN: all `k` NN searches run from
//! `p` in parallel, and the feasible chain through the per-dataset NNs
//! `nᵢ = p.NN(Sᵢ)` yields the radius `d = dis(p, n₁) + Σ dis(nᵢ, nᵢ₊₁)`.
//! Theorem 1 generalizes by the triangle inequality: every member `sᵢ` of
//! the optimal chain satisfies `dis(p, sᵢ) ≤ total* ≤ d`, so window
//! queries over `circle(p, d)` on every channel capture the answer; a
//! layered dynamic program ([`crate::chain_join`]) then finds the best
//! chain among the candidates.

use super::QueryScratch;
use crate::task::queue::{ArrivalHeap, CandidateQueue};
use crate::task::{BroadcastNnSearch, WindowQueryTask};
use crate::{chain_join, AnnMode, AnnSpec, ChannelCost, SearchMode, TnnError};
use serde::{Deserialize, Serialize};
use tnn_broadcast::{MultiChannelEnv, PhaseOverlay, Tuner};
use tnn_geom::{Circle, Point};
use tnn_rtree::ObjectId;

/// The outcome of a chained TNN query.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChainRun {
    /// The best chain `s₁ … s_k`, one entry per channel, in visit order.
    pub path: Vec<(Point, ObjectId)>,
    /// Total length `dis(p, s₁) + Σ dis(sᵢ, sᵢ₊₁)`.
    pub total_dist: f64,
    /// Filter radius used.
    pub search_radius: f64,
    /// Slot at which the query was issued.
    pub issued_at: u64,
    /// Slot at which the whole query finished.
    pub completed_at: u64,
    /// Per-channel costs.
    pub channels: Vec<ChannelCost>,
}

impl ChainRun {
    /// Access time in slots.
    pub fn access_time(&self) -> u64 {
        self.completed_at - self.issued_at
    }

    /// Tune-in time in pages (all channels).
    pub fn tune_in(&self) -> u64 {
        self.channels.iter().map(|c| c.total_pages()).sum()
    }
}

/// Executes a chained TNN query over `env.len()` channels (categories in
/// channel order), with one ANN mode shared by every channel.
///
/// # Errors
/// [`TnnError::WrongChannelCount`] for fewer than two channels;
/// [`TnnError::NonFiniteQuery`] for NaN/infinite query points.
#[deprecated(
    since = "0.2.0",
    note = "build a `QueryEngine` and run `Query::chain(p)` instead"
)]
pub fn chain_tnn(
    env: &MultiChannelEnv,
    p: Point,
    issued_at: u64,
    ann: AnnMode,
    retrieve_answer_objects: bool,
) -> Result<ChainRun, TnnError> {
    chain_tnn_overlay(
        &PhaseOverlay::identity(env),
        p,
        issued_at,
        &AnnSpec::Uniform(ann),
        retrieve_answer_objects,
        &mut QueryScratch::<ArrivalHeap>::default(),
    )
}

/// The chained-TNN pipeline behind [`chain_tnn`] and
/// [`crate::QueryEngine`]: runs over a [`PhaseOverlay`] (zero-clone
/// per-query phases), supports per-channel ANN modes through
/// [`AnnSpec`], and reuses the caller's k-ary [`QueryScratch`] for the
/// estimate-phase searches.
///
/// # Errors
/// As [`chain_tnn`].
///
/// # Panics
/// Panics when a per-channel [`AnnSpec`] does not match the channel
/// count.
pub fn chain_tnn_overlay<Q: CandidateQueue>(
    overlay: &PhaseOverlay<'_>,
    p: Point,
    issued_at: u64,
    ann: &AnnSpec,
    retrieve_answer_objects: bool,
    scratch: &mut QueryScratch<Q>,
) -> Result<ChainRun, TnnError> {
    let k = overlay.len();
    if k < 2 {
        return Err(TnnError::WrongChannelCount {
            needed: 2,
            available: k,
        });
    }
    if !p.is_finite() {
        return Err(TnnError::NonFiniteQuery);
    }
    ann.check_channels(k);
    scratch.ensure_channels(k);

    // Estimate: parallel NN searches from p on every channel, interleaved
    // in global time order.
    let mut tasks: Vec<BroadcastNnSearch<'_, Q>> = scratch
        .nn
        .iter_mut()
        .take(k)
        .enumerate()
        .map(|(i, nn_scratch)| {
            BroadcastNnSearch::with_scratch(
                overlay.view(i),
                SearchMode::Point { q: p },
                ann.mode(i),
                issued_at,
                nn_scratch,
            )
        })
        .collect();
    loop {
        let next = tasks
            .iter()
            .enumerate()
            .filter_map(|(i, t)| t.next_arrival().map(|a| (a, i)))
            .min();
        match next {
            Some((_, i)) => {
                tasks[i].step();
            }
            None => break,
        }
    }

    // Feasible chain through the per-channel NNs of p.
    let nns: Vec<Point> = tasks
        .iter()
        .map(|t| t.best().expect("non-empty dataset").0)
        .collect();
    let mut radius = p.dist(nns[0]);
    for w in nns.windows(2) {
        radius += w[0].dist(w[1]);
    }
    let est_end = tasks.iter().map(|t| t.now()).max().unwrap_or(issued_at);
    let est_costs: Vec<(Tuner, u64)> = tasks.iter().map(|t| (*t.tuner(), t.now())).collect();
    for (task, nn_scratch) in tasks.into_iter().zip(scratch.nn.iter_mut()) {
        task.recycle(nn_scratch);
    }

    // Filter: window queries on every channel, reusing the k-ary window
    // scratch buffers (the join reads the hit lists in place — nothing
    // is copied out). The range is closed (the estimate chain lies on
    // its boundary); pad by a few ULPs so rounding cannot exclude
    // boundary candidates.
    let range = Circle::new(p, radius * (1.0 + 4.0 * f64::EPSILON));
    let mut windows = Vec::with_capacity(k);
    let mut channels = Vec::with_capacity(k);
    let mut filter_end = est_end;
    for ((i, &(est_tuner, est_now)), window_scratch) in
        est_costs.iter().enumerate().zip(scratch.window.iter_mut())
    {
        let mut w = WindowQueryTask::with_scratch(overlay.view(i), range, est_end, window_scratch);
        let end = w.run_to_completion();
        filter_end = filter_end.max(end);
        channels.push(ChannelCost {
            estimate_pages: est_tuner.pages,
            filter_pages: w.tuner().pages,
            retrieve_pages: 0,
            finish_time: est_now.max(end),
        });
        windows.push(w);
    }

    let layers: Vec<&[(Point, ObjectId)]> = windows.iter().map(|w| w.hits()).collect();
    let (path, total_dist) = chain_join(p, &layers)
        .expect("the estimate chain is inside the range, so no layer is empty");
    for (w, window_scratch) in windows.into_iter().zip(scratch.window.iter_mut()) {
        w.recycle(window_scratch);
    }

    if retrieve_answer_objects {
        for (i, (_, object)) in path.iter().enumerate() {
            let (done, pages) = overlay.view(i).retrieve_object(*object, filter_end);
            channels[i].retrieve_pages = pages;
            channels[i].finish_time = channels[i].finish_time.max(done);
        }
    }

    let completed_at = channels
        .iter()
        .map(|c| c.finish_time)
        .max()
        .unwrap_or(est_end);

    Ok(ChainRun {
        path,
        total_dist,
        search_radius: radius,
        issued_at,
        completed_at,
        channels,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact_chain_tnn;
    use std::sync::Arc;
    use tnn_broadcast::BroadcastParams;
    use tnn_rtree::{PackingAlgorithm, RTree};

    /// The overlay pipeline with an identity overlay and fresh scratch —
    /// what the deprecated `chain_tnn` wrapper does.
    fn chain(
        env: &MultiChannelEnv,
        p: Point,
        issued_at: u64,
        ann: AnnMode,
        retrieve: bool,
    ) -> Result<ChainRun, TnnError> {
        chain_tnn_overlay(
            &PhaseOverlay::identity(env),
            p,
            issued_at,
            &AnnSpec::Uniform(ann),
            retrieve,
            &mut QueryScratch::<ArrivalHeap>::default(),
        )
    }

    fn make_env(layers: &[Vec<Point>], phases: &[u64]) -> MultiChannelEnv {
        let params = BroadcastParams::new(64);
        let trees = layers
            .iter()
            .map(|pts| {
                Arc::new(RTree::build(pts, params.rtree_params(), PackingAlgorithm::Str).unwrap())
            })
            .collect();
        MultiChannelEnv::new(trees, params, phases)
    }

    fn cloud(n: usize, salt: usize) -> Vec<Point> {
        (0..n)
            .map(|i| {
                Point::new(
                    ((i + salt) * 41 % 307) as f64,
                    ((i + salt) * 59 % 311) as f64,
                )
            })
            .collect()
    }

    #[test]
    fn three_channel_chain_matches_oracle() {
        let layers = vec![cloud(60, 0), cloud(80, 7), cloud(50, 19)];
        let env = make_env(&layers, &[3, 17, 91]);
        let p = Point::new(150.0, 150.0);
        let run = chain(&env, p, 5, AnnMode::Exact, true).unwrap();
        let trees: Vec<&RTree> = env.channels().iter().map(|c| c.tree()).collect();
        let (_, oracle_total) = exact_chain_tnn(p, &trees);
        assert!(
            (run.total_dist - oracle_total).abs() < 1e-9,
            "chain {} vs oracle {}",
            run.total_dist,
            oracle_total
        );
        assert_eq!(run.path.len(), 3);
        assert!(run.tune_in() > 0);
        assert!(run.access_time() > 0);
    }

    #[test]
    fn two_channel_chain_equals_tnn() {
        let layers = vec![cloud(70, 2), cloud(90, 11)];
        let env = make_env(&layers, &[0, 41]);
        let p = Point::new(100.0, 200.0);
        let run = chain(&env, p, 0, AnnMode::Exact, false).unwrap();
        let oracle = crate::exact_tnn(p, env.channel(0).tree(), env.channel(1).tree());
        assert!((run.total_dist - oracle.dist).abs() < 1e-9);
    }

    #[test]
    fn single_channel_is_rejected() {
        let layers = vec![cloud(10, 0)];
        let env = make_env(&layers, &[0]);
        let err = chain(&env, Point::ORIGIN, 0, AnnMode::Exact, false).unwrap_err();
        assert!(matches!(err, TnnError::WrongChannelCount { .. }));
    }

    #[test]
    fn non_finite_query_rejected() {
        let layers = vec![cloud(10, 0), cloud(10, 5)];
        let env = make_env(&layers, &[0, 0]);
        let err = chain(&env, Point::new(f64::NAN, 0.0), 0, AnnMode::Exact, false).unwrap_err();
        assert_eq!(err, TnnError::NonFiniteQuery);
    }

    #[test]
    fn ann_chain_still_exact_answer() {
        let layers = vec![cloud(120, 1), cloud(100, 9), cloud(110, 23)];
        let env = make_env(&layers, &[7, 3, 55]);
        let p = Point::new(80.0, 120.0);
        let exact = chain(&env, p, 0, AnnMode::Exact, false).unwrap();
        let ann = chain(&env, p, 0, AnnMode::Dynamic { factor: 1.0 }, false).unwrap();
        // The ANN radius can only grow, so the DP still sees the optimum.
        assert!(ann.search_radius >= exact.search_radius - 1e-9);
        assert!((ann.total_dist - exact.total_dist).abs() < 1e-9);
    }
}
