//! Double-NN-Search (paper §4.1, Algorithm 1), generalized to `k ≥ 2`
//! channels.
//!
//! All `k` nearest-neighbor queries run from the query point `p` **in
//! parallel**, starting "at the earliest opportunity, i.e., as soon as the
//! index roots appear in the channels". The radius is the feasible chain
//! through the per-channel NNs `nᵢ = p.NN(Sᵢ)`:
//! `d = dis(p, n₁) + Σ dis(nᵢ, nᵢ₊₁)` — Theorem 1 generalizes by the
//! triangle inequality (every member of the optimal chain lies within the
//! chain total, hence within `d`, of `p`), so the filter range contains
//! the answer. For `k = 2` this is exactly Algorithm 1's
//! `d = dis(p, s) + dis(s, r)` with `s = p.NN(S)`, `r = p.NN(R)`.

use super::{
    chain_length, harvest_searches, run_interleaved, spawn_parallel_searches, Estimate,
    QueryScratch,
};
use crate::task::queue::CandidateQueue;
use crate::{TnnConfig, TnnError};
use tnn_broadcast::PhaseOverlay;
use tnn_geom::Point;

pub(crate) fn estimate<Q: CandidateQueue>(
    overlay: &PhaseOverlay<'_>,
    p: Point,
    issued_at: u64,
    cfg: &TnnConfig,
    scratch: &mut QueryScratch<Q>,
) -> Result<Estimate, TnnError> {
    let k = overlay.len();
    let mut tasks =
        spawn_parallel_searches(overlay, p, issued_at, |i| cfg.ann[i], scratch.nn_slice(k));
    // No re-targeting: the completion hook is a no-op.
    run_interleaved(&mut tasks, |_, _, _, _| {});
    let (nns, tuners, end, hops) = harvest_searches(tasks, scratch.nn_slice(k))?;
    Ok(Estimate {
        // Algorithm 1 line 4, k-ary: d ← dis(p, n₁) + Σ dis(nᵢ, nᵢ₊₁).
        radius: chain_length(p, nns.iter().map(|&(pt, _)| pt)),
        tuners,
        end,
        hops,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Algorithm;
    use std::sync::Arc;
    use tnn_broadcast::{BroadcastParams, MultiChannelEnv};
    use tnn_rtree::{PackingAlgorithm, RTree};

    fn fresh() -> super::QueryScratch {
        super::QueryScratch::default()
    }

    fn ov(env: &MultiChannelEnv) -> PhaseOverlay<'_> {
        PhaseOverlay::identity(env)
    }

    fn env(s: &[Point], r: &[Point], phases: [u64; 2]) -> MultiChannelEnv {
        let params = BroadcastParams::new(64);
        let ts = RTree::build(s, params.rtree_params(), PackingAlgorithm::Str).unwrap();
        let tr = RTree::build(r, params.rtree_params(), PackingAlgorithm::Str).unwrap();
        MultiChannelEnv::new(vec![Arc::new(ts), Arc::new(tr)], params, &phases)
    }

    fn env_k(layers: &[Vec<Point>], phases: &[u64]) -> MultiChannelEnv {
        let params = BroadcastParams::new(64);
        let trees = layers
            .iter()
            .map(|pts| {
                Arc::new(RTree::build(pts, params.rtree_params(), PackingAlgorithm::Str).unwrap())
            })
            .collect();
        MultiChannelEnv::new(trees, params, phases)
    }

    fn grid(n: usize, salt: usize) -> Vec<Point> {
        (0..n)
            .map(|i| {
                Point::new(
                    ((i + salt) * 37 % 211) as f64,
                    ((i + salt) * 53 % 223) as f64,
                )
            })
            .collect()
    }

    #[test]
    fn radius_uses_both_nns_from_p() {
        let s = grid(100, 0);
        let r = grid(130, 5);
        let e = env(&s, &r, [3, 77]);
        let p = Point::new(90.0, 110.0);
        let est = estimate(
            &ov(&e),
            p,
            0,
            &TnnConfig::exact(Algorithm::DoubleNn),
            &mut fresh(),
        )
        .unwrap();
        let s_star = s
            .iter()
            .min_by(|a, b| p.dist(**a).total_cmp(&p.dist(**b)))
            .unwrap();
        let r_star = r
            .iter()
            .min_by(|a, b| p.dist(**a).total_cmp(&p.dist(**b)))
            .unwrap();
        let expect = p.dist(*s_star) + s_star.dist(*r_star);
        assert!((est.radius - expect).abs() < 1e-9);
    }

    #[test]
    fn k_ary_radius_is_chain_through_per_channel_nns() {
        let layers = vec![grid(90, 0), grid(110, 7), grid(70, 19)];
        let e = env_k(&layers, &[3, 17, 91]);
        let p = Point::new(120.0, 90.0);
        let est = estimate(
            &ov(&e),
            p,
            0,
            &TnnConfig::exact_for(Algorithm::DoubleNn, 3),
            &mut fresh(),
        )
        .unwrap();
        let mut expect = 0.0;
        let mut prev = p;
        for layer in &layers {
            let nn = layer
                .iter()
                .min_by(|a, b| p.dist(**a).total_cmp(&p.dist(**b)))
                .unwrap();
            expect += prev.dist(*nn);
            prev = *nn;
        }
        assert!((est.radius - expect).abs() < 1e-9);
        assert_eq!(est.tuners.len(), 3);
    }

    #[test]
    fn double_radius_never_below_window_based_radius() {
        // The window-based radius uses s.NN(R), which minimizes the second
        // leg, so Double-NN's radius is always at least as large.
        let s = grid(140, 2);
        let r = grid(160, 11);
        let e = env(&s, &r, [9, 31]);
        for (px, py) in [(10.0, 10.0), (100.0, 50.0), (200.0, 200.0)] {
            let p = Point::new(px, py);
            let d_dbl = estimate(
                &ov(&e),
                p,
                0,
                &TnnConfig::exact(Algorithm::DoubleNn),
                &mut fresh(),
            )
            .unwrap()
            .radius;
            let d_win = super::super::window_based::estimate(
                &ov(&e),
                p,
                0,
                &TnnConfig::exact(Algorithm::WindowBased),
                &mut fresh(),
            )
            .unwrap()
            .radius;
            assert!(d_dbl >= d_win - 1e-9);
        }
    }

    #[test]
    fn end_to_end_answer_is_exact() {
        let s = grid(150, 1);
        let r = grid(120, 9);
        let e = env(&s, &r, [17, 3]);
        for (px, py) in [(0.0, 0.0), (150.0, 100.0), (-40.0, 260.0)] {
            let p = Point::new(px, py);
            let run = crate::run_query_impl(
                &e,
                p,
                4,
                &TnnConfig::exact(Algorithm::DoubleNn),
                &mut fresh(),
            )
            .unwrap();
            let got = run.answer().expect("double-NN never fails");
            let oracle = crate::exact_tnn(p, e.channel(0).tree(), e.channel(1).tree());
            assert!(
                (got.dist - oracle.dist).abs() < 1e-9,
                "query {p:?}: got {} expected {}",
                got.dist,
                oracle.dist
            );
        }
    }

    #[test]
    fn three_channel_run_matches_chain_oracle() {
        let layers = vec![grid(80, 1), grid(60, 9), grid(100, 21)];
        let e = env_k(&layers, &[5, 55, 555]);
        let p = Point::new(100.0, 100.0);
        let run = crate::run_query_impl(
            &e,
            p,
            0,
            &TnnConfig::exact_for(Algorithm::DoubleNn, 3),
            &mut fresh(),
        )
        .unwrap();
        let trees: Vec<&RTree> = e.channels().iter().map(|c| c.tree()).collect();
        let (_, oracle_total) = crate::exact_chain_tnn(p, &trees);
        assert!((run.total_dist.unwrap() - oracle_total).abs() < 1e-9);
        assert_eq!(run.route.len(), 3);
        assert_eq!(run.channels.len(), 3);
        assert_eq!(run.candidates.len(), 3);
    }

    #[test]
    fn estimate_phases_overlap_in_time() {
        // Parallel searches: both channels' estimate downloads start
        // within one bucket of the issue time, unlike Window-Based where
        // channel 1 waits for channel 0 to finish.
        let s = grid(400, 0);
        let r = grid(400, 7);
        let e = env(&s, &r, [0, 0]);
        let p = Point::new(105.0, 105.0);
        let est = estimate(
            &ov(&e),
            p,
            0,
            &TnnConfig::exact(Algorithm::DoubleNn),
            &mut fresh(),
        )
        .unwrap();
        let bucket0 = e.channel(0).layout().bucket_len();
        let bucket1 = e.channel(1).layout().bucket_len();
        // First download on each channel happens within its first bucket
        // (finish_time - pages gives a coarse lower bound on the start).
        assert!(est.tuners[0].finish_time.unwrap() <= bucket0 + e.channel(0).layout().index_len());
        assert!(est.tuners[1].finish_time.unwrap() <= bucket1 + e.channel(1).layout().index_len());
    }
}
