//! Double-NN-Search (paper §4.1, Algorithm 1).
//!
//! Both nearest-neighbor queries run from the query point `p` **in
//! parallel**, starting "at the earliest opportunity, i.e., as soon as the
//! index roots appear in the two channels". The radius is
//! `d = dis(p, s) + dis(s, r)` with `s = p.NN(S)` and `r = p.NN(R)` —
//! a feasible pair, so Theorem 1 guarantees the filter range contains the
//! answer.

use super::{run_parallel, Estimate, QueryScratch};
use crate::task::queue::CandidateQueue;
use crate::task::BroadcastNnSearch;
use crate::{SearchMode, TnnConfig};
use tnn_broadcast::PhaseOverlay;
use tnn_geom::Point;

pub(crate) fn estimate<Q: CandidateQueue>(
    overlay: &PhaseOverlay<'_>,
    p: Point,
    issued_at: u64,
    cfg: &TnnConfig,
    scratch: &mut QueryScratch<Q>,
) -> Estimate {
    let (s0, s1) = scratch.nn_pair();
    let mut a = BroadcastNnSearch::with_scratch(
        overlay.view(0),
        SearchMode::Point { q: p },
        cfg.ann[0],
        issued_at,
        s0,
    );
    let mut b = BroadcastNnSearch::with_scratch(
        overlay.view(1),
        SearchMode::Point { q: p },
        cfg.ann[1],
        issued_at,
        s1,
    );
    // No re-targeting: the completion hook is a no-op.
    run_parallel(&mut a, &mut b, |_, _, _, _| {});

    let (s_pt, _, _) = a.best().expect("non-empty S");
    let (r_pt, _, _) = b.best().expect("non-empty R");

    let est = Estimate {
        // Algorithm 1 line 4: d ← dis(p, s) + dis(s, r), with r = p.NN(R).
        radius: p.dist(s_pt) + s_pt.dist(r_pt),
        tuners: [*a.tuner(), *b.tuner()],
        end: a.now().max(b.now()),
    };
    a.recycle(s0);
    b.recycle(s1);
    est
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Algorithm;
    use std::sync::Arc;
    use tnn_broadcast::{BroadcastParams, MultiChannelEnv};
    use tnn_rtree::{PackingAlgorithm, RTree};

    fn fresh() -> super::QueryScratch {
        super::QueryScratch::default()
    }

    fn ov(env: &MultiChannelEnv) -> PhaseOverlay<'_> {
        PhaseOverlay::identity(env)
    }

    fn env(s: &[Point], r: &[Point], phases: [u64; 2]) -> MultiChannelEnv {
        let params = BroadcastParams::new(64);
        let ts = RTree::build(s, params.rtree_params(), PackingAlgorithm::Str).unwrap();
        let tr = RTree::build(r, params.rtree_params(), PackingAlgorithm::Str).unwrap();
        MultiChannelEnv::new(vec![Arc::new(ts), Arc::new(tr)], params, &phases)
    }

    fn grid(n: usize, salt: usize) -> Vec<Point> {
        (0..n)
            .map(|i| {
                Point::new(
                    ((i + salt) * 37 % 211) as f64,
                    ((i + salt) * 53 % 223) as f64,
                )
            })
            .collect()
    }

    #[test]
    fn radius_uses_both_nns_from_p() {
        let s = grid(100, 0);
        let r = grid(130, 5);
        let e = env(&s, &r, [3, 77]);
        let p = Point::new(90.0, 110.0);
        let est = estimate(
            &ov(&e),
            p,
            0,
            &TnnConfig::exact(Algorithm::DoubleNn),
            &mut fresh(),
        );
        let s_star = s
            .iter()
            .min_by(|a, b| p.dist(**a).total_cmp(&p.dist(**b)))
            .unwrap();
        let r_star = r
            .iter()
            .min_by(|a, b| p.dist(**a).total_cmp(&p.dist(**b)))
            .unwrap();
        let expect = p.dist(*s_star) + s_star.dist(*r_star);
        assert!((est.radius - expect).abs() < 1e-9);
    }

    #[test]
    fn double_radius_never_below_window_based_radius() {
        // The window-based radius uses s.NN(R), which minimizes the second
        // leg, so Double-NN's radius is always at least as large.
        let s = grid(140, 2);
        let r = grid(160, 11);
        let e = env(&s, &r, [9, 31]);
        for (px, py) in [(10.0, 10.0), (100.0, 50.0), (200.0, 200.0)] {
            let p = Point::new(px, py);
            let d_dbl = estimate(
                &ov(&e),
                p,
                0,
                &TnnConfig::exact(Algorithm::DoubleNn),
                &mut fresh(),
            )
            .radius;
            let d_win = super::super::window_based::estimate(
                &ov(&e),
                p,
                0,
                &TnnConfig::exact(Algorithm::WindowBased),
                &mut fresh(),
            )
            .radius;
            assert!(d_dbl >= d_win - 1e-9);
        }
    }

    #[test]
    fn end_to_end_answer_is_exact() {
        let s = grid(150, 1);
        let r = grid(120, 9);
        let e = env(&s, &r, [17, 3]);
        for (px, py) in [(0.0, 0.0), (150.0, 100.0), (-40.0, 260.0)] {
            let p = Point::new(px, py);
            let run = crate::run_query_impl(
                &e,
                p,
                4,
                &TnnConfig::exact(Algorithm::DoubleNn),
                &mut fresh(),
            )
            .unwrap();
            let got = run.answer.expect("double-NN never fails");
            let oracle = crate::exact_tnn(p, e.channel(0).tree(), e.channel(1).tree());
            assert!(
                (got.dist - oracle.dist).abs() < 1e-9,
                "query {p:?}: got {} expected {}",
                got.dist,
                oracle.dist
            );
        }
    }

    #[test]
    fn estimate_phases_overlap_in_time() {
        // Parallel searches: both channels' estimate downloads start
        // within one bucket of the issue time, unlike Window-Based where
        // channel 1 waits for channel 0 to finish.
        let s = grid(400, 0);
        let r = grid(400, 7);
        let e = env(&s, &r, [0, 0]);
        let p = Point::new(105.0, 105.0);
        let est = estimate(
            &ov(&e),
            p,
            0,
            &TnnConfig::exact(Algorithm::DoubleNn),
            &mut fresh(),
        );
        let bucket0 = e.channel(0).layout().bucket_len();
        let bucket1 = e.channel(1).layout().bucket_len();
        // First download on each channel happens within its first bucket
        // (finish_time - pages gives a coarse lower bound on the start).
        assert!(est.tuners[0].finish_time.unwrap() <= bucket0 + e.channel(0).layout().index_len());
        assert!(est.tuners[1].finish_time.unwrap() <= bucket1 + e.channel(1).layout().index_len());
    }
}
