//! Property tests for TNN query processing: every exact algorithm must
//! return the true optimum on arbitrary datasets, phases and query
//! points; ANN pruning must never change the final answer (Theorem 1);
//! and the cost accounting must satisfy basic sanity laws.
//!
//! These run through the deprecated free-function wrappers on purpose:
//! they double as regression coverage that the wrappers keep working
//! while they exist (the engine itself is property-tested for
//! byte-identity against them in `crates/bench/tests`).
#![allow(deprecated)]

use proptest::prelude::*;
use std::sync::Arc;
use tnn_broadcast::{BroadcastParams, MultiChannelEnv};
use tnn_core::{exact_tnn, run_query, Algorithm, AnnMode, TnnConfig};
use tnn_geom::Point;
use tnn_rtree::{PackingAlgorithm, RTree};

#[derive(Debug, Clone)]
struct Scenario {
    s: Vec<Point>,
    r: Vec<Point>,
    phases: [u64; 2],
    page: usize,
    query: Point,
    issued_at: u64,
}

fn scenario_strategy() -> impl Strategy<Value = Scenario> {
    let pts = |max: usize| {
        prop::collection::vec(
            (0.0f64..1000.0, 0.0f64..1000.0).prop_map(|(x, y)| Point::new(x, y)),
            1..max,
        )
    };
    (
        pts(250),
        pts(250),
        (0u64..100_000, 0u64..100_000),
        prop::sample::select(vec![64usize, 128]),
        (-200.0f64..1200.0, -200.0f64..1200.0),
        0u64..50_000,
    )
        .prop_map(|(s, r, (ph0, ph1), page, (qx, qy), issued_at)| Scenario {
            s,
            r,
            phases: [ph0, ph1],
            page,
            query: Point::new(qx, qy),
            issued_at,
        })
}

fn build_env(sc: &Scenario) -> MultiChannelEnv {
    let params = BroadcastParams::new(sc.page);
    let ts = RTree::build(&sc.s, params.rtree_params(), PackingAlgorithm::Str).unwrap();
    let tr = RTree::build(&sc.r, params.rtree_params(), PackingAlgorithm::Str).unwrap();
    MultiChannelEnv::new(vec![Arc::new(ts), Arc::new(tr)], params, &sc.phases)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Window-Based, Double-NN and Hybrid-NN always return the exact TNN.
    #[test]
    fn exact_algorithms_match_oracle(sc in scenario_strategy()) {
        let env = build_env(&sc);
        let oracle = exact_tnn(sc.query, env.channel(0).tree(), env.channel(1).tree());
        for alg in [Algorithm::WindowBased, Algorithm::DoubleNn, Algorithm::HybridNn] {
            let run = run_query(&env, sc.query, sc.issued_at, &TnnConfig::exact(alg)).unwrap();
            let got = run.answer.unwrap_or_else(|| panic!("{} failed", alg.name()));
            prop_assert!(
                (got.dist - oracle.dist).abs() < 1e-9,
                "{}: got {} expected {}",
                alg.name(), got.dist, oracle.dist
            );
        }
    }

    /// ANN pruning never changes the answer of the exact algorithms
    /// (Theorem 1: the enlarged radius still contains the optimum).
    #[test]
    fn ann_preserves_answers(sc in scenario_strategy(), factor in 0.01f64..4.0) {
        let env = build_env(&sc);
        let oracle = exact_tnn(sc.query, env.channel(0).tree(), env.channel(1).tree());
        for alg in [Algorithm::WindowBased, Algorithm::DoubleNn, Algorithm::HybridNn] {
            let cfg = TnnConfig::exact(alg)
                .with_ann(AnnMode::Dynamic { factor }, AnnMode::Dynamic { factor });
            let run = run_query(&env, sc.query, sc.issued_at, &cfg).unwrap();
            let got = run.answer.unwrap();
            prop_assert!(
                (got.dist - oracle.dist).abs() < 1e-9,
                "{} + ANN({factor}): got {} expected {}",
                alg.name(), got.dist, oracle.dist
            );
        }
    }

    /// The reported answer pair always realizes the reported distance;
    /// both members lie inside the search circle; and for the exact
    /// algorithms (whose radius comes from a feasible pair) the answer's
    /// transitive distance never exceeds the radius.
    #[test]
    fn answers_are_internally_consistent(sc in scenario_strategy()) {
        let env = build_env(&sc);
        for alg in Algorithm::ALL {
            let run = run_query(&env, sc.query, sc.issued_at, &TnnConfig::exact(alg)).unwrap();
            if let Some(pair) = &run.answer {
                let recomputed = sc.query.dist(pair.s.0) + pair.s.0.dist(pair.r.0);
                prop_assert!((recomputed - pair.dist).abs() < 1e-9);
                // Theorem 1: candidates are drawn from circle(p, d).
                prop_assert!(sc.query.dist(pair.s.0) <= run.search_radius + 1e-9);
                prop_assert!(sc.query.dist(pair.r.0) <= run.search_radius + 1e-9);
                if alg.is_exact() {
                    prop_assert!(pair.dist <= run.search_radius + 1e-9,
                        "{}: answer {} outside radius {}", alg.name(), pair.dist, run.search_radius);
                }
            }
        }
    }

    /// Cost-accounting laws: completion after issue, estimate before
    /// completion, phase page sums equal channel totals, access time
    /// covers the estimate phase.
    #[test]
    fn cost_accounting_laws(sc in scenario_strategy()) {
        let env = build_env(&sc);
        for alg in Algorithm::ALL {
            let run = run_query(&env, sc.query, sc.issued_at, &TnnConfig::exact(alg)).unwrap();
            prop_assert!(run.issued_at == sc.issued_at);
            prop_assert!(run.estimate_end >= run.issued_at);
            prop_assert!(run.completed_at >= run.estimate_end);
            let per_channel: u64 = run.channels.iter().map(|c| c.total_pages()).sum();
            prop_assert_eq!(per_channel, run.tune_in());
            prop_assert!(run.access_time() >= run.estimate_end - run.issued_at);
            // Exact algorithms always answer.
            if alg.is_exact() {
                prop_assert!(run.answer.is_some());
            }
        }
    }

    /// Channel phases never affect the *answer* (only the costs).
    #[test]
    fn phases_do_not_change_answers(
        sc in scenario_strategy(),
        alt_phases in (0u64..100_000, 0u64..100_000),
    ) {
        let env_a = build_env(&sc);
        let mut sc_b = sc.clone();
        sc_b.phases = [alt_phases.0, alt_phases.1];
        let env_b = build_env(&sc_b);
        for alg in [Algorithm::WindowBased, Algorithm::DoubleNn] {
            let run_a = run_query(&env_a, sc.query, sc.issued_at, &TnnConfig::exact(alg)).unwrap();
            let run_b = run_query(&env_b, sc.query, sc.issued_at, &TnnConfig::exact(alg)).unwrap();
            let (a, b) = (run_a.answer.unwrap(), run_b.answer.unwrap());
            prop_assert!((a.dist - b.dist).abs() < 1e-9, "{}", alg.name());
        }
    }

    /// Approximate-TNN never downloads estimate pages, starts its filter
    /// phase immediately, and any answer it gives is built from
    /// candidates inside its circle.
    #[test]
    fn approximate_tnn_properties(sc in scenario_strategy()) {
        let env = build_env(&sc);
        let run = run_query(&env, sc.query, sc.issued_at,
            &TnnConfig::exact(Algorithm::ApproximateTnn)).unwrap();
        prop_assert_eq!(run.tune_in_estimate(), 0);
        prop_assert_eq!(run.estimate_end, sc.issued_at);
        if let Some(pair) = &run.answer {
            prop_assert!(sc.query.dist(pair.s.0) <= run.search_radius + 1e-9);
            prop_assert!(sc.query.dist(pair.r.0) <= run.search_radius + 1e-9);
        }
    }

    /// Hybrid-NN's filter radius never exceeds Double-NN's in case-3
    /// situations where R is tiny (the switch fires at once), matching
    /// §6.1.2's tune-in analysis.
    #[test]
    fn hybrid_radius_bounded_by_double_when_r_tiny(
        s in prop::collection::vec(
            (0.0f64..1000.0, 0.0f64..1000.0).prop_map(|(x, y)| Point::new(x, y)), 200..400),
        r in prop::collection::vec(
            (0.0f64..1000.0, 0.0f64..1000.0).prop_map(|(x, y)| Point::new(x, y)), 1..5),
        qx in 0.0f64..1000.0,
        qy in 0.0f64..1000.0,
    ) {
        let sc = Scenario {
            s, r, phases: [11, 3], page: 64,
            query: Point::new(qx, qy), issued_at: 0,
        };
        let env = build_env(&sc);
        let hybrid = run_query(&env, sc.query, 0, &TnnConfig::exact(Algorithm::HybridNn)).unwrap();
        let double = run_query(&env, sc.query, 0, &TnnConfig::exact(Algorithm::DoubleNn)).unwrap();
        prop_assert!(hybrid.search_radius <= double.search_radius + 1e-9);
    }
}
