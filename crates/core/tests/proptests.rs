//! Property tests for TNN query processing: every exact algorithm must
//! return the true optimum on arbitrary datasets, phases and query
//! points — at the paper's two channels and beyond; ANN pruning must
//! never change the final answer (Theorem 1); and the cost accounting
//! must satisfy basic sanity laws.
//!
//! These run through the single-query `run_query_impl` entry point (the
//! engine itself is property-tested for byte-identity against a frozen
//! copy of the two-channel pipeline in `crates/bench/tests`).

use proptest::prelude::*;
use std::sync::Arc;
use tnn_broadcast::{BroadcastParams, MultiChannelEnv};
use tnn_core::{
    exact_chain_tnn, exact_tnn, run_query_impl, Algorithm, AnnMode, Query, QueryEngine,
    QueryScratch, TnnConfig, TnnRun,
};
use tnn_geom::Point;
use tnn_rtree::{PackingAlgorithm, RTree};

#[derive(Debug, Clone)]
struct Scenario {
    s: Vec<Point>,
    r: Vec<Point>,
    phases: [u64; 2],
    page: usize,
    query: Point,
    issued_at: u64,
}

fn scenario_strategy() -> impl Strategy<Value = Scenario> {
    let pts = |max: usize| {
        prop::collection::vec(
            (0.0f64..1000.0, 0.0f64..1000.0).prop_map(|(x, y)| Point::new(x, y)),
            1..max,
        )
    };
    (
        pts(250),
        pts(250),
        (0u64..100_000, 0u64..100_000),
        prop::sample::select(vec![64usize, 128]),
        (-200.0f64..1200.0, -200.0f64..1200.0),
        0u64..50_000,
    )
        .prop_map(|(s, r, (ph0, ph1), page, (qx, qy), issued_at)| Scenario {
            s,
            r,
            phases: [ph0, ph1],
            page,
            query: Point::new(qx, qy),
            issued_at,
        })
}

fn build_env(sc: &Scenario) -> MultiChannelEnv {
    let params = BroadcastParams::new(sc.page);
    let ts = RTree::build(&sc.s, params.rtree_params(), PackingAlgorithm::Str).unwrap();
    let tr = RTree::build(&sc.r, params.rtree_params(), PackingAlgorithm::Str).unwrap();
    MultiChannelEnv::new(vec![Arc::new(ts), Arc::new(tr)], params, &sc.phases)
}

fn build_env_k(layers: &[Vec<Point>], phases: &[u64], page: usize) -> MultiChannelEnv {
    let params = BroadcastParams::new(page);
    let trees = layers
        .iter()
        .map(|pts| {
            Arc::new(RTree::build(pts, params.rtree_params(), PackingAlgorithm::Str).unwrap())
        })
        .collect();
    MultiChannelEnv::new(trees, params, phases)
}

fn run(env: &MultiChannelEnv, p: Point, issued_at: u64, cfg: &TnnConfig) -> TnnRun {
    let mut scratch: QueryScratch = QueryScratch::default();
    run_query_impl(env, p, issued_at, cfg, &mut scratch).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Window-Based, Double-NN and Hybrid-NN always return the exact TNN.
    #[test]
    fn exact_algorithms_match_oracle(sc in scenario_strategy()) {
        let env = build_env(&sc);
        let oracle = exact_tnn(sc.query, env.channel(0).tree(), env.channel(1).tree());
        for alg in [Algorithm::WindowBased, Algorithm::DoubleNn, Algorithm::HybridNn] {
            let run = run(&env, sc.query, sc.issued_at, &TnnConfig::exact(alg));
            let got = run.answer().unwrap_or_else(|| panic!("{} failed", alg.name()));
            prop_assert!(
                (got.dist - oracle.dist).abs() < 1e-9,
                "{}: got {} expected {}",
                alg.name(), got.dist, oracle.dist
            );
        }
    }

    /// ANN pruning never changes the answer of the exact algorithms
    /// (Theorem 1: the enlarged radius still contains the optimum).
    #[test]
    fn ann_preserves_answers(sc in scenario_strategy(), factor in 0.01f64..4.0) {
        let env = build_env(&sc);
        let oracle = exact_tnn(sc.query, env.channel(0).tree(), env.channel(1).tree());
        for alg in [Algorithm::WindowBased, Algorithm::DoubleNn, Algorithm::HybridNn] {
            let cfg = TnnConfig::exact(alg)
                .with_ann_modes(&[AnnMode::Dynamic { factor }; 2]);
            let got = run(&env, sc.query, sc.issued_at, &cfg).answer().unwrap();
            prop_assert!(
                (got.dist - oracle.dist).abs() < 1e-9,
                "{} + ANN({factor}): got {} expected {}",
                alg.name(), got.dist, oracle.dist
            );
        }
    }

    /// The reported answer pair always realizes the reported distance;
    /// both members lie inside the search circle; and for the exact
    /// algorithms (whose radius comes from a feasible pair) the answer's
    /// transitive distance never exceeds the radius.
    #[test]
    fn answers_are_internally_consistent(sc in scenario_strategy()) {
        let env = build_env(&sc);
        for alg in Algorithm::ALL {
            let run = run(&env, sc.query, sc.issued_at, &TnnConfig::exact(alg));
            if let Some(pair) = run.answer() {
                let recomputed = sc.query.dist(pair.s.0) + pair.s.0.dist(pair.r.0);
                prop_assert!((recomputed - pair.dist).abs() < 1e-9);
                // Theorem 1: candidates are drawn from circle(p, d).
                prop_assert!(sc.query.dist(pair.s.0) <= run.search_radius + 1e-9);
                prop_assert!(sc.query.dist(pair.r.0) <= run.search_radius + 1e-9);
                if alg.is_exact() {
                    prop_assert!(pair.dist <= run.search_radius + 1e-9,
                        "{}: answer {} outside radius {}", alg.name(), pair.dist, run.search_radius);
                }
            }
        }
    }

    /// Cost-accounting laws: completion after issue, estimate before
    /// completion, phase page sums equal channel totals, access time
    /// covers the estimate phase.
    #[test]
    fn cost_accounting_laws(sc in scenario_strategy()) {
        let env = build_env(&sc);
        for alg in Algorithm::ALL {
            let run = run(&env, sc.query, sc.issued_at, &TnnConfig::exact(alg));
            prop_assert!(run.issued_at == sc.issued_at);
            prop_assert!(run.estimate_end >= run.issued_at);
            prop_assert!(run.completed_at >= run.estimate_end);
            let per_channel: u64 = run.channels.iter().map(|c| c.total_pages()).sum();
            prop_assert_eq!(per_channel, run.tune_in());
            prop_assert!(run.access_time() >= run.estimate_end - run.issued_at);
            // Exact algorithms always answer.
            if alg.is_exact() {
                prop_assert!(!run.failed());
            }
        }
    }

    /// Channel phases never affect the *answer* (only the costs).
    #[test]
    fn phases_do_not_change_answers(
        sc in scenario_strategy(),
        alt_phases in (0u64..100_000, 0u64..100_000),
    ) {
        let env_a = build_env(&sc);
        let mut sc_b = sc.clone();
        sc_b.phases = [alt_phases.0, alt_phases.1];
        let env_b = build_env(&sc_b);
        for alg in [Algorithm::WindowBased, Algorithm::DoubleNn] {
            let run_a = run(&env_a, sc.query, sc.issued_at, &TnnConfig::exact(alg));
            let run_b = run(&env_b, sc.query, sc.issued_at, &TnnConfig::exact(alg));
            let (a, b) = (run_a.answer().unwrap(), run_b.answer().unwrap());
            prop_assert!((a.dist - b.dist).abs() < 1e-9, "{}", alg.name());
        }
    }

    /// Approximate-TNN never downloads estimate pages, starts its filter
    /// phase immediately, and any answer it gives is built from
    /// candidates inside its circle.
    #[test]
    fn approximate_tnn_properties(sc in scenario_strategy()) {
        let env = build_env(&sc);
        let run = run(&env, sc.query, sc.issued_at,
            &TnnConfig::exact(Algorithm::ApproximateTnn));
        prop_assert_eq!(run.tune_in_estimate(), 0);
        prop_assert_eq!(run.estimate_end, sc.issued_at);
        if let Some(pair) = run.answer() {
            prop_assert!(sc.query.dist(pair.s.0) <= run.search_radius + 1e-9);
            prop_assert!(sc.query.dist(pair.r.0) <= run.search_radius + 1e-9);
        }
    }

    /// Hybrid-NN's filter radius never exceeds Double-NN's in case-3
    /// situations where R is tiny (the switch fires at once), matching
    /// §6.1.2's tune-in analysis.
    #[test]
    fn hybrid_radius_bounded_by_double_when_r_tiny(
        s in prop::collection::vec(
            (0.0f64..1000.0, 0.0f64..1000.0).prop_map(|(x, y)| Point::new(x, y)), 200..400),
        r in prop::collection::vec(
            (0.0f64..1000.0, 0.0f64..1000.0).prop_map(|(x, y)| Point::new(x, y)), 1..5),
        qx in 0.0f64..1000.0,
        qy in 0.0f64..1000.0,
    ) {
        let sc = Scenario {
            s, r, phases: [11, 3], page: 64,
            query: Point::new(qx, qy), issued_at: 0,
        };
        let env = build_env(&sc);
        let hybrid = run(&env, sc.query, 0, &TnnConfig::exact(Algorithm::HybridNn));
        let double = run(&env, sc.query, 0, &TnnConfig::exact(Algorithm::DoubleNn));
        prop_assert!(hybrid.search_radius <= double.search_radius + 1e-9);
    }

    /// Every exact algorithm returns the true optimal chain at three and
    /// four channels — the generalized core against the exact chain
    /// oracle, with per-hop costs and a full k-stop route.
    #[test]
    fn exact_algorithms_match_chain_oracle_at_k(
        layers in prop::collection::vec(
            prop::collection::vec(
                (0.0f64..1000.0, 0.0f64..1000.0).prop_map(|(x, y)| Point::new(x, y)),
                1..120,
            ),
            3..5,
        ),
        phase_seed in 0u64..100_000,
        (qx, qy) in (-100.0f64..1100.0, -100.0f64..1100.0),
        issued_at in 0u64..20_000,
    ) {
        let k = layers.len();
        let phases: Vec<u64> =
            (0..k as u64).map(|i| phase_seed.wrapping_mul(i + 1) % 60_000).collect();
        let env = build_env_k(&layers, &phases, 64);
        let p = Point::new(qx, qy);
        let trees: Vec<&RTree> = env.channels().iter().map(|c| c.tree()).collect();
        let (_, oracle_total) = exact_chain_tnn(p, &trees);
        for alg in [Algorithm::WindowBased, Algorithm::DoubleNn, Algorithm::HybridNn] {
            let run = run(&env, p, issued_at, &TnnConfig::exact_for(alg, k));
            prop_assert_eq!(run.route.len(), k, "{}", alg.name());
            prop_assert_eq!(run.channels.len(), k, "{}", alg.name());
            let got = run.total_dist.unwrap();
            prop_assert!(
                (got - oracle_total).abs() < 1e-9,
                "{} at k={}: got {} expected {}",
                alg.name(), k, got, oracle_total
            );
            // Every stop lies inside the filter circle (Theorem 1,
            // generalized).
            for &(pt, _) in &run.route {
                prop_assert!(p.dist(pt) <= run.search_radius + 1e-9);
            }
        }
    }

    /// Duplicate points — shared across channels and repeated within one
    /// — never confuse the pipeline: the optimum matches the oracle and
    /// the route realizes the reported total.
    #[test]
    fn duplicate_points_across_channels(
        base in prop::collection::vec(
            (0.0f64..200.0, 0.0f64..200.0).prop_map(|(x, y)| Point::new(x, y)),
            1..40,
        ),
        dups in 1usize..4,
        k in 2usize..5,
        (qx, qy) in (0.0f64..200.0, 0.0f64..200.0),
    ) {
        // Every channel broadcasts the same multiset of points, each
        // repeated `dups` times.
        let layer: Vec<Point> = base
            .iter()
            .flat_map(|&pt| std::iter::repeat_n(pt, dups))
            .collect();
        let layers: Vec<Vec<Point>> = (0..k).map(|_| layer.clone()).collect();
        let env = build_env_k(&layers, &vec![7; k], 64);
        let p = Point::new(qx, qy);
        // With identical layers the optimal chain parks at p's NN:
        // d = dis(p, nn) and every later hop repeats the same point.
        let nn = base
            .iter()
            .map(|&pt| p.dist(pt))
            .fold(f64::INFINITY, f64::min);
        for alg in [Algorithm::WindowBased, Algorithm::DoubleNn, Algorithm::HybridNn] {
            let run = run(&env, p, 0, &TnnConfig::exact_for(alg, k));
            let got = run.total_dist.unwrap();
            prop_assert!(
                (got - nn).abs() < 1e-9,
                "{} k={} dups={}: got {} expected {}",
                alg.name(), k, dups, got, nn
            );
            // The route realizes the total.
            let mut recomputed = 0.0;
            let mut prev = p;
            for &(pt, _) in &run.route {
                recomputed += prev.dist(pt);
                prev = pt;
            }
            prop_assert!((recomputed - got).abs() < 1e-9);
        }
    }

    /// Pooled engine runs and caller-scratch runs are deterministic and
    /// identical at k > 2, across repeated executions on the same pool.
    #[test]
    fn pooled_vs_scratch_determinism_beyond_two_channels(
        layers in prop::collection::vec(
            prop::collection::vec(
                (0.0f64..500.0, 0.0f64..500.0).prop_map(|(x, y)| Point::new(x, y)),
                1..80,
            ),
            3..5,
        ),
        (qx, qy) in (0.0f64..500.0, 0.0f64..500.0),
    ) {
        let k = layers.len();
        let env = build_env_k(&layers, &vec![13; k], 64);
        let engine = QueryEngine::new(env);
        let p = Point::new(qx, qy);
        let mut scratch = QueryScratch::default();
        for alg in Algorithm::ALL {
            let query = Query::tnn(p).algorithm(alg).issued_at(9);
            let pooled_a = engine.run(&query).unwrap();
            let direct = engine.run_with(&query, &mut scratch).unwrap();
            // A second pooled run draws the recycled (grown) scratch.
            let pooled_b = engine.run(&query).unwrap();
            prop_assert_eq!(&pooled_a, &direct, "{}", alg.name());
            prop_assert_eq!(&pooled_a, &pooled_b, "{}", alg.name());
        }
    }
}
