//! # tnn-datasets
//!
//! Deterministic spatial dataset generators for the EDBT 2008 TNN
//! reproduction (paper §6):
//!
//! * the **uniform density family** `UNIF(e)`: eight datasets of densities
//!   `10^−7.0 … 10^−4.2` in a 39,000 × 39,000 region (152 … 95,969
//!   points) — see [`unif`] and [`UNIF_EXPONENTS`];
//! * the **size family**: datasets of 2,000 … 32,000 points in steps of
//!   2,000 — see [`size_family`];
//! * **clustered stand-ins for the paper's real datasets** (the original
//!   CITY/Greece and POST/north-east-US sets from the rtreeportal archive
//!   are not redistributable): [`city_like`] (≈6,000 points, heavily
//!   clustered) and [`post_like`] (≈123,000 points, population-like,
//!   generated in a 1,000,000² region and scaled to the common region the
//!   way the paper scales its datasets).
//!
//! Everything is seeded and reproducible; the same seed always yields the
//! same dataset.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod clustered;
mod region;
mod uniform;

pub use clustered::{city_like, clustered, post_like, ClusterSpec};
pub use region::{paper_region, post_region, scale_points, PAPER_SIDE, POST_SIDE};
pub use uniform::{size_family, unif, unif_size, uniform_points, SIZE_FAMILY, UNIF_EXPONENTS};
