//! Clustered (skewed) synthetic datasets: Gaussian-mixture stand-ins for
//! the paper's real CITY and POST datasets.
//!
//! The originals (≈6,000 Greek cities; >100,000 north-east-US post
//! offices, both from the rtreeportal archive cited as [1]) are not
//! redistributable. What every TNN algorithm actually reacts to is
//! **non-uniform local density** — the Approximate-TNN radius formula
//! (paper eq. 1) assumes global uniformity and breaks exactly when local
//! density deviates from it, which drives the Table 3 fail rates. A
//! power-law Gaussian mixture with a small uniform background reproduces
//! that property; absolute coordinates are irrelevant to the metrics.

use crate::{paper_region, post_region, scale_points};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tnn_geom::{Point, Rect};

/// Specification of a Gaussian-mixture clustered dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterSpec {
    /// Total number of points.
    pub n: usize,
    /// Number of Gaussian clusters.
    pub clusters: usize,
    /// Fraction of points drawn as diffuse "rural" background — scattered
    /// around the cluster *centers* (with 4× the cluster spread) rather
    /// than uniformly, so that the unpopulated voids stay empty
    /// (0.0 … 1.0).
    pub background_frac: f64,
    /// Smallest cluster standard deviation, as a fraction of the region
    /// side.
    pub spread_min: f64,
    /// Largest cluster standard deviation, as a fraction of the region
    /// side.
    pub spread_max: f64,
    /// Power-law exponent for cluster weights: cluster `i` (1-based) gets
    /// weight `i^(−power)`. Zero gives equal-sized clusters; larger values
    /// concentrate mass in few clusters (population-like skew).
    pub power: f64,
    /// Number of macro regions ("landmasses") that cluster centers are
    /// confined to; `0` spreads the centers uniformly over the whole
    /// region. Real geographic datasets concentrate on a fraction of
    /// their bounding rectangle (coastlines, states) leaving large voids
    /// — the property that breaks the uniformity assumption of
    /// Approximate-TNN (paper Table 3).
    pub macro_clusters: usize,
    /// Standard deviation of cluster centers around their macro anchor,
    /// as a fraction of the region side.
    pub macro_spread: f64,
}

/// Generates a clustered dataset over `region`, deterministic in `seed`.
///
/// Cluster centers are uniform over the region; cluster sizes follow the
/// spec's power law; each cluster is an isotropic Gaussian whose standard
/// deviation is drawn log-uniformly between the spread bounds. Samples
/// falling outside the region are redrawn a few times, then clamped, so
/// the advertised point count is exact.
pub fn clustered(spec: &ClusterSpec, region: &Rect, seed: u64) -> Vec<Point> {
    assert!(spec.clusters >= 1, "need at least one cluster");
    assert!(
        (0.0..=1.0).contains(&spec.background_frac),
        "background fraction must be in [0, 1]"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let side = region.width().max(region.height());

    // Macro anchors ("landmasses"), when configured: cluster centers
    // gather around them, leaving the rest of the region as void.
    let anchors: Vec<Point> = (0..spec.macro_clusters)
        .map(|_| {
            Point::new(
                rng.gen_range(region.min.x..=region.max.x),
                rng.gen_range(region.min.y..=region.max.y),
            )
        })
        .collect();

    // Cluster centers and spreads.
    let centers: Vec<Point> = (0..spec.clusters)
        .map(|i| {
            if anchors.is_empty() {
                Point::new(
                    rng.gen_range(region.min.x..=region.max.x),
                    rng.gen_range(region.min.y..=region.max.y),
                )
            } else {
                let anchor = anchors[i % anchors.len()];
                sample_gaussian_in_region(&mut rng, anchor, spec.macro_spread * side, region)
            }
        })
        .collect();
    let spreads: Vec<f64> = (0..spec.clusters)
        .map(|_| {
            let lo = spec.spread_min.max(1e-6).ln();
            let hi = spec.spread_max.max(spec.spread_min.max(1e-6)).ln();
            (if hi > lo { rng.gen_range(lo..=hi) } else { lo }).exp() * side
        })
        .collect();

    // Power-law weights → cumulative distribution over clusters.
    let weights: Vec<f64> = (1..=spec.clusters)
        .map(|i| (i as f64).powf(-spec.power))
        .collect();
    let total: f64 = weights.iter().sum();
    let mut cumulative = Vec::with_capacity(spec.clusters);
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total;
        cumulative.push(acc);
    }

    let n_background = (spec.n as f64 * spec.background_frac).round() as usize;
    let n_clustered = spec.n - n_background;

    let mut points = Vec::with_capacity(spec.n);
    for _ in 0..n_clustered {
        let u: f64 = rng.gen();
        let k = cumulative
            .iter()
            .position(|&c| u <= c)
            .unwrap_or(spec.clusters - 1);
        points.push(sample_gaussian_in_region(
            &mut rng, centers[k], spreads[k], region,
        ));
    }
    // Diffuse background around the populated areas (villages, rural
    // offices) — deliberately *not* uniform over the region, so that the
    // voids of real geographic data are reproduced.
    for i in 0..n_background {
        let k = if centers.is_empty() {
            0
        } else {
            i % centers.len()
        };
        points.push(sample_gaussian_in_region(
            &mut rng,
            centers[k],
            spreads[k] * 4.0,
            region,
        ));
    }
    points
}

/// One Gaussian sample around `center` with deviation `sigma`, redrawn up
/// to 16 times to land inside `region`, then clamped.
fn sample_gaussian_in_region(rng: &mut StdRng, center: Point, sigma: f64, region: &Rect) -> Point {
    for _ in 0..16 {
        let (gx, gy) = box_muller(rng);
        let p = Point::new(center.x + gx * sigma, center.y + gy * sigma);
        if region.contains(p) {
            return p;
        }
    }
    let (gx, gy) = box_muller(rng);
    region.closest_point(Point::new(center.x + gx * sigma, center.y + gy * sigma))
}

/// A pair of independent standard normal samples (Box–Muller transform).
fn box_muller(rng: &mut StdRng) -> (f64, f64) {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    let r = (-2.0 * u1.ln()).sqrt();
    let theta = 2.0 * std::f64::consts::PI * u2;
    (r * theta.cos(), r * theta.sin())
}

/// CITY-like dataset: ≈5,922 points in the paper region, heavily
/// clustered — the stand-in for the paper's "nearly 6,000 cities and
/// villages of Greece". Settlements gather on a handful of "landmass"
/// macro regions (coastal Greece), leaving large voids (the sea) that
/// defeat the uniformity assumption of Approximate-TNN exactly as the
/// real dataset does.
pub fn city_like(seed: u64) -> Vec<Point> {
    clustered(
        &ClusterSpec {
            n: 5_922,
            clusters: 40,
            background_frac: 0.10,
            spread_min: 0.003,
            spread_max: 0.02,
            power: 1.0,
            macro_clusters: 7,
            macro_spread: 0.16,
        },
        &paper_region(),
        seed,
    )
}

/// POST-like dataset: ≈123,593 points, population-like skew, generated in
/// the native 1,000,000² region and scaled to the paper region exactly as
/// the paper scales its datasets — the stand-in for "more than 100,000
/// post offices in the north-east of the United States" (whose bounding
/// rectangle is mostly ocean and sparsely populated land).
pub fn post_like(seed: u64) -> Vec<Point> {
    let native = clustered(
        &ClusterSpec {
            n: 123_593,
            clusters: 220,
            background_frac: 0.06,
            spread_min: 0.002,
            spread_max: 0.02,
            power: 1.1,
            macro_clusters: 6,
            macro_spread: 0.10,
        },
        &post_region(),
        seed,
    );
    scale_points(&native, &post_region(), &paper_region())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_point_counts() {
        assert_eq!(city_like(1).len(), 5_922);
        let spec = ClusterSpec {
            n: 1_000,
            clusters: 5,
            background_frac: 0.1,
            spread_min: 0.01,
            spread_max: 0.02,
            power: 1.0,
            macro_clusters: 0,
            macro_spread: 0.0,
        };
        assert_eq!(clustered(&spec, &paper_region(), 3).len(), 1_000);
    }

    #[test]
    fn all_points_inside_region() {
        let region = paper_region();
        for p in city_like(5) {
            assert!(region.contains(p), "{p:?} escaped the region");
        }
    }

    #[test]
    fn post_like_is_scaled_into_paper_region() {
        let region = paper_region();
        let pts = post_like(2);
        assert_eq!(pts.len(), 123_593);
        for p in pts.iter().take(2_000) {
            assert!(region.contains(*p));
        }
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(city_like(9), city_like(9));
        assert_ne!(city_like(9), city_like(10));
    }

    #[test]
    fn clustering_is_actually_skewed() {
        // Split the region into a 10×10 grid; a clustered dataset must
        // concentrate far more mass in its densest cell than a uniform one
        // would (uniform ≈ 1% per cell).
        let pts = city_like(11);
        let side = crate::PAPER_SIDE;
        let mut counts = [0usize; 100];
        for p in &pts {
            let gx = ((p.x / side * 10.0) as usize).min(9);
            let gy = ((p.y / side * 10.0) as usize).min(9);
            counts[gy * 10 + gx] += 1;
        }
        let max_frac = *counts.iter().max().unwrap() as f64 / pts.len() as f64;
        assert!(
            max_frac > 0.05,
            "densest cell only holds {max_frac:.3} of the points"
        );
        // And substantial voids must exist (the "sea" of the real CITY
        // dataset): many grid cells hold essentially nothing.
        let empty = counts.iter().filter(|&&c| c < 3).count();
        assert!(empty > 25, "only {empty} near-empty cells");
    }

    #[test]
    fn background_fraction_zero_and_one() {
        let region = paper_region();
        let base = ClusterSpec {
            n: 500,
            clusters: 3,
            background_frac: 0.0,
            spread_min: 0.005,
            spread_max: 0.01,
            power: 0.0,
            macro_clusters: 2,
            macro_spread: 0.05,
        };
        assert_eq!(clustered(&base, &region, 1).len(), 500);
        let all_bg = ClusterSpec {
            background_frac: 1.0,
            ..base
        };
        assert_eq!(clustered(&all_bg, &region, 1).len(), 500);
    }

    #[test]
    #[should_panic(expected = "at least one cluster")]
    fn zero_clusters_panics() {
        let spec = ClusterSpec {
            n: 10,
            clusters: 0,
            background_frac: 0.0,
            spread_min: 0.01,
            spread_max: 0.02,
            power: 1.0,
            macro_clusters: 0,
            macro_spread: 0.0,
        };
        clustered(&spec, &paper_region(), 1);
    }

    #[test]
    fn box_muller_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for _ in 0..n {
            let (a, b) = box_muller(&mut rng);
            sum += a + b;
            sum_sq += a * a + b * b;
        }
        let mean = sum / (2.0 * n as f64);
        let var = sum_sq / (2.0 * n as f64);
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }
}
