//! Uniformly distributed synthetic datasets: the `UNIF(e)` density family
//! and the 2,000-step size family of §6.

use crate::paper_region;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tnn_geom::{Point, Rect};

/// The eight density exponents of the paper's first synthetic family:
/// densities `10^e` points per unit area for
/// `e ∈ {−7.0, −6.6, −6.2, −5.8, −5.4, −5.0, −4.6, −4.2}`, yielding
/// 152 … 95,969 points over the 39,000² region.
pub const UNIF_EXPONENTS: [f64; 8] = [-7.0, -6.6, -6.2, -5.8, -5.4, -5.0, -4.6, -4.2];

/// The paper's second synthetic family: sizes 2,000 … 32,000 in steps of
/// 2,000 ("16 datasets having sizes ranging from 2,000 to 30,000 with
/// 2,000 increment" — the text says 16 datasets, so the range is taken
/// inclusive of 32,000).
pub const SIZE_FAMILY: [usize; 16] = [
    2_000, 4_000, 6_000, 8_000, 10_000, 12_000, 14_000, 16_000, 18_000, 20_000, 22_000, 24_000,
    26_000, 28_000, 30_000, 32_000,
];

/// Number of points a density of `10^exponent` implies over `region`
/// (rounded to the nearest integer). For the paper region this reproduces
/// the sizes quoted in §6: `unif_size(-7.0) == 152`,
/// `unif_size(-4.2) == 95_969`, etc.
pub fn unif_size(exponent: f64, region: &Rect) -> usize {
    (10f64.powf(exponent) * region.area()).round() as usize
}

/// `n` points uniformly distributed over `region`, deterministic in
/// `seed`.
pub fn uniform_points(n: usize, region: &Rect, seed: u64) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            Point::new(
                rng.gen_range(region.min.x..=region.max.x),
                rng.gen_range(region.min.y..=region.max.y),
            )
        })
        .collect()
}

/// The `UNIF(e)` dataset: uniform points of density `10^exponent` over the
/// paper region. Different seeds give the independent "first" and
/// "second" dataset families of §6.
pub fn unif(exponent: f64, seed: u64) -> Vec<Point> {
    let region = paper_region();
    uniform_points(unif_size(exponent, &region), &region, seed)
}

/// A size-family dataset: `n` uniform points over the paper region.
pub fn size_family(n: usize, seed: u64) -> Vec<Point> {
    uniform_points(n, &paper_region(), seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unif_sizes_match_paper_quotes() {
        let region = paper_region();
        let expect = [152, 382, 960, 2_411, 6_055, 15_210, 38_206, 95_969];
        for (e, want) in UNIF_EXPONENTS.iter().zip(expect) {
            assert_eq!(unif_size(*e, &region), want, "exponent {e}");
        }
    }

    #[test]
    fn points_stay_in_region() {
        let region = paper_region();
        for p in uniform_points(5_000, &region, 42) {
            assert!(region.contains(p));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = unif(-6.2, 7);
        let b = unif(-6.2, 7);
        assert_eq!(a, b);
        let c = unif(-6.2, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn size_family_has_requested_sizes() {
        assert_eq!(SIZE_FAMILY.len(), 16);
        assert_eq!(size_family(2_000, 1).len(), 2_000);
        assert_eq!(size_family(32_000, 1).len(), 32_000);
    }

    #[test]
    fn uniformity_rough_check() {
        // Quarter the region; each quadrant should hold ~25% of the points.
        let region = paper_region();
        let pts = uniform_points(40_000, &region, 3);
        let half = PAPER_SIDE_HALF;
        let q1 = pts.iter().filter(|p| p.x < half && p.y < half).count();
        let frac = q1 as f64 / 40_000.0;
        assert!((frac - 0.25).abs() < 0.02, "quadrant fraction {frac}");
    }

    const PAPER_SIDE_HALF: f64 = crate::PAPER_SIDE / 2.0;
}
