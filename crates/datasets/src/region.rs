//! The evaluation regions of the paper and dataset rescaling.

use tnn_geom::{Point, Rect};

/// Side length of the paper's synthetic/CITY region (39,000 × 39,000).
pub const PAPER_SIDE: f64 = 39_000.0;

/// Side length of the paper's POST region (1,000,000 × 1,000,000).
pub const POST_SIDE: f64 = 1_000_000.0;

/// The common evaluation region: `[0, 39000]²`.
pub fn paper_region() -> Rect {
    Rect::from_coords(0.0, 0.0, PAPER_SIDE, PAPER_SIDE)
}

/// The native POST region: `[0, 1000000]²`.
pub fn post_region() -> Rect {
    Rect::from_coords(0.0, 0.0, POST_SIDE, POST_SIDE)
}

/// Affinely rescales points from one region onto another — the paper's
/// "when datasets with different areas are used, they are scaled to the
/// same area".
pub fn scale_points(points: &[Point], from: &Rect, to: &Rect) -> Vec<Point> {
    let sx = if from.width() > 0.0 {
        to.width() / from.width()
    } else {
        0.0
    };
    let sy = if from.height() > 0.0 {
        to.height() / from.height()
    } else {
        0.0
    };
    points
        .iter()
        .map(|p| {
            Point::new(
                to.min.x + (p.x - from.min.x) * sx,
                to.min.y + (p.y - from.min.y) * sy,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_have_expected_extent() {
        assert_eq!(paper_region().width(), 39_000.0);
        assert_eq!(post_region().area(), 1e12);
    }

    #[test]
    fn scaling_maps_corners_to_corners() {
        let from = post_region();
        let to = paper_region();
        let scaled = scale_points(
            &[
                Point::new(0.0, 0.0),
                Point::new(POST_SIDE, POST_SIDE),
                Point::new(POST_SIDE / 2.0, 0.0),
            ],
            &from,
            &to,
        );
        assert_eq!(scaled[0], Point::new(0.0, 0.0));
        assert_eq!(scaled[1], Point::new(PAPER_SIDE, PAPER_SIDE));
        assert_eq!(scaled[2], Point::new(PAPER_SIDE / 2.0, 0.0));
    }

    #[test]
    fn scaling_preserves_relative_positions() {
        let from = Rect::from_coords(10.0, 10.0, 20.0, 30.0);
        let to = Rect::from_coords(0.0, 0.0, 1.0, 1.0);
        let scaled = scale_points(&[Point::new(15.0, 20.0)], &from, &to);
        assert_eq!(scaled[0], Point::new(0.5, 0.5));
    }

    #[test]
    fn degenerate_source_region_collapses() {
        let from = Rect::from_coords(5.0, 5.0, 5.0, 9.0);
        let to = paper_region();
        let scaled = scale_points(&[Point::new(5.0, 7.0)], &from, &to);
        assert_eq!(scaled[0].x, 0.0);
        assert_eq!(scaled[0].y, PAPER_SIDE / 2.0);
    }
}
