//! # tnn — transitive nearest-neighbor queries over multi-channel wireless broadcast
//!
//! A from-scratch Rust reproduction of *Zhang, Lee, Mitra, Zheng:
//! Processing Transitive Nearest-Neighbor Queries in Multi-Channel Access
//! Environments* (EDBT 2008), packaged as one facade crate.
//!
//! Given a query point `p` and two datasets `S`, `R` broadcast cyclically
//! on two wireless channels, a **TNN query** returns the pair
//! `(s, r) ∈ S × R` minimizing `dis(p, s) + dis(s, r)` — e.g. the post
//! office and the restaurant with the smallest total detour.
//!
//! All queries go through one [`QueryEngine`](prelude::QueryEngine) over
//! a shared multi-channel environment; requests are described with the
//! builder-style [`Query`](prelude::Query) type and return a unified
//! [`QueryOutcome`](prelude::QueryOutcome):
//!
//! ```
//! use std::sync::Arc;
//! use tnn::prelude::*;
//!
//! // Two small datasets, broadcast on two channels.
//! let params = BroadcastParams::new(64);
//! let post_offices: Vec<Point> =
//!     (0..60).map(|i| Point::new((i * 97 % 391) as f64, (i * 61 % 401) as f64)).collect();
//! let restaurants: Vec<Point> =
//!     (0..80).map(|i| Point::new((i * 53 % 379) as f64, (i * 89 % 397) as f64)).collect();
//! let s = Arc::new(RTree::build(&post_offices, params.rtree_params(), PackingAlgorithm::Str)?);
//! let r = Arc::new(RTree::build(&restaurants, params.rtree_params(), PackingAlgorithm::Str)?);
//! let env = MultiChannelEnv::new(vec![s, r], params, &[17, 42]);
//!
//! // A mobile client runs Hybrid-NN over the air.
//! let engine = QueryEngine::new(env);
//! let outcome = engine.run(
//!     &Query::tnn(Point::new(200.0, 200.0)).algorithm(Algorithm::HybridNn),
//! )?;
//! println!("total distance {:.1}, access {} slots, tune-in {} pages",
//!          outcome.total_dist.expect("exact algorithms always answer"),
//!          outcome.access_time(), outcome.tune_in());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! Every query kind runs over any `k ≥ 2`-channel environment: the four
//! TNN algorithms generalize to `k`-hop routes `p → s₁ → … → s_k` (the
//! paper's chained future-work item, `Query::chain`, is the Double-NN
//! pipeline under another name), as do order-free TNN
//! (`Query::order_free`, any visit order) and round-trip TNN
//! (`Query::round_trip`, closed tour). Per-query knobs ride the builder:
//! `.ann_modes(..)` for per-channel approximate-search pruning and
//! `.phases(..)` for zero-clone per-query phase randomization. The
//! pre-engine free functions (`run_query`, `chain_tnn`, …) were
//! deprecated in 0.2.0 and are gone; see `docs/API.md` for the
//! migration guide.
//!
//! ## Crate map
//!
//! | crate | contents |
//! |---|---|
//! | [`geom`] (`tnn-geom`) | points, MBRs, the transitive metrics `MinTransDist` / `MinMaxTransDist`, exact circle/ellipse–rectangle overlap areas |
//! | [`rtree`] (`tnn-rtree`) | packed R-tree (STR / Hilbert / Nearest-X), in-memory queries |
//! | [`broadcast`] (`tnn-broadcast`) | `(1, m)` air-indexed broadcast programs, channels, `Arc`-shared environments, zero-clone phase overlays |
//! | [`core`] (`tnn-core`) | the `QueryEngine`, the four TNN algorithms, ANN optimization, chained-TNN extension, exact oracle |
//! | [`datasets`] (`tnn-datasets`) | the paper's synthetic workloads and clustered real-data stand-ins |
//! | [`qos`] (`tnn-qos`) | quality-of-service primitives: priority classes, deadlines, retry policies and budgets, the strict-priority multi-level queue, the sharded LRU result cache |
//! | [`faults`] (`tnn-faults`) | deterministic fault injection: seedable per-channel drop/jitter/outage schedules, engine panics, worker kills |
//! | [`serve`] (`tnn-serve`) | the concurrent serving front-end: worker pool, priority lanes with deadlines and backpressure, result cache, tickets, retry/degradation ladder, self-healing workers, graceful shutdown |
//! | [`shard`] (`tnn-shard`) | spatially-sharded scatter-gather serving: grid / R-tree-split partitioning, transitive-bound shard pruning, hot-shard replication with queue-depth routing, byte-identical merged answers |
//! | [`trace`] (`tnn-trace`) | std-only observability: per-query span traces, the metrics registry with Prometheus text export, log₂ latency histograms, the slow-query flight recorder |
//! | [`sim`] (`tnn-sim`) | the experiment harness regenerating every figure/table of the paper |

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use tnn_broadcast as broadcast;
pub use tnn_core as core;
pub use tnn_datasets as datasets;
pub use tnn_faults as faults;
pub use tnn_geom as geom;
pub use tnn_qos as qos;
pub use tnn_rtree as rtree;
pub use tnn_serve as serve;
pub use tnn_shard as shard;
pub use tnn_sim as sim;
pub use tnn_trace as trace;

/// The most common imports, re-exported flat.
pub mod prelude {
    pub use tnn_broadcast::{
        BroadcastParams, Channel, ChannelView, MultiChannelEnv, PhaseOverlay, Tuner,
    };
    pub use tnn_core::{
        exact_chain_tnn, exact_tnn, Algorithm, AnnMode, AnnModes, Query, QueryEngine, QueryKey,
        QueryKind, QueryOutcome, RouteStop, TnnConfig, TnnError, TnnPair, TnnRun,
    };
    pub use tnn_faults::{ChannelFaults, FaultPlan, FaultStats, TuneIn};
    pub use tnn_geom::{transitive_dist, Circle, Ellipse, Point, Rect};
    pub use tnn_qos::{
        CacheConfig, Deadline, Priority, Qos, RetryBudget, RetryPolicy, ShedDiscipline,
    };
    pub use tnn_rtree::{PackingAlgorithm, RTree, RTreeParams};
    pub use tnn_serve::{
        Backpressure, ClassStats, Degradation, ServeConfig, ServeStats, Server, ShutdownMode,
        Ticket,
    };
    pub use tnn_shard::{Partition, ShardConfig, ShardOutcome, ShardPlan, ShardRouter, ShardStats};
    pub use tnn_trace::{
        FlightRecorder, LatencyHistogram, MetricsRegistry, QueryTrace, RecorderConfig, Span,
        SpanKind, TraceConfig,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::Arc;

    #[test]
    fn facade_round_trip() {
        let params = BroadcastParams::new(64);
        let pts: Vec<Point> = (0..50)
            .map(|i| Point::new((i * 7 % 53) as f64, (i * 11 % 59) as f64))
            .collect();
        let s = Arc::new(RTree::build(&pts, params.rtree_params(), PackingAlgorithm::Str).unwrap());
        let r = Arc::new(RTree::build(&pts, params.rtree_params(), PackingAlgorithm::Str).unwrap());
        let env = MultiChannelEnv::new(vec![s, r], params, &[0, 0]);
        let engine = QueryEngine::new(env);
        let outcome = engine
            .run(&Query::tnn(Point::new(25.0, 25.0)).algorithm(Algorithm::DoubleNn))
            .unwrap();
        assert!(!outcome.failed());
        assert_eq!(outcome.route.len(), 2);
    }
}
