//! End-to-end integration tests spanning every crate: datasets → R-tree →
//! broadcast program → query engine → metrics, on paper-shaped workloads.

use std::sync::Arc;
use tnn::prelude::*;
use tnn_datasets::{city_like, paper_region, unif, uniform_points};

fn env_from(s: &[Point], r: &[Point], cap: usize, phases: [u64; 2]) -> MultiChannelEnv {
    let params = BroadcastParams::new(cap);
    let s_tree = Arc::new(RTree::build(s, params.rtree_params(), PackingAlgorithm::Str).unwrap());
    let r_tree = Arc::new(RTree::build(r, params.rtree_params(), PackingAlgorithm::Str).unwrap());
    MultiChannelEnv::new(vec![s_tree, r_tree], params, &phases)
}

fn engine_from(s: &[Point], r: &[Point], cap: usize, phases: [u64; 2]) -> QueryEngine {
    QueryEngine::new(env_from(s, r, cap, phases))
}

fn oracle_dist(engine: &QueryEngine, q: Point) -> f64 {
    exact_tnn(
        q,
        engine.env().channel(0).tree(),
        engine.env().channel(1).tree(),
    )
    .dist
}

#[test]
fn all_exact_algorithms_agree_with_oracle_on_paper_workload() {
    // UNIF(-6.2) × UNIF(-5.8): 960 × 2,411 points, the paper's region.
    let engine = engine_from(&unif(-6.2, 1), &unif(-5.8, 2), 64, [123, 456_789]);
    let queries = uniform_points(25, &paper_region(), 42);
    for (i, &q) in queries.iter().enumerate() {
        let oracle = oracle_dist(&engine, q);
        for alg in [
            Algorithm::WindowBased,
            Algorithm::DoubleNn,
            Algorithm::HybridNn,
        ] {
            let run = engine
                .run(&Query::tnn(q).algorithm(alg).issued_at(i as u64 * 1_000))
                .unwrap();
            let got = run.total_dist.unwrap();
            assert!((got - oracle).abs() < 1e-6, "{} query {q:?}", alg.name());
        }
    }
}

#[test]
fn skewed_data_never_breaks_exact_algorithms() {
    let city = city_like(7);
    let engine = engine_from(&city, &unif(-5.8, 3), 64, [0, 777]);
    let queries = uniform_points(15, &paper_region(), 99);
    for &q in &queries {
        let oracle = oracle_dist(&engine, q);
        let run = engine
            .run(&Query::tnn(q).algorithm(Algorithm::HybridNn))
            .unwrap();
        assert!((run.total_dist.unwrap() - oracle).abs() < 1e-6);
    }
}

#[test]
fn ann_is_transparent_to_answers_across_page_capacities() {
    for cap in [64usize, 128, 256, 512] {
        let engine = engine_from(&unif(-6.2, 4), &unif(-6.2, 5), cap, [11, 22]);
        let queries = uniform_points(10, &paper_region(), cap as u64);
        for &q in &queries {
            let oracle = oracle_dist(&engine, q);
            let m = AnnMode::Dynamic { factor: 0.05 };
            let run = engine
                .run(
                    &Query::tnn(q)
                        .algorithm(Algorithm::DoubleNn)
                        .ann_modes(&[m, m]),
                )
                .unwrap();
            assert!((run.total_dist.unwrap() - oracle).abs() < 1e-6, "cap {cap}");
        }
    }
}

#[test]
fn metamorphic_scaling_scales_distances() {
    // Scaling every coordinate by k scales the TNN distance by k and
    // leaves the answer pair's identity unchanged.
    let s: Vec<Point> = uniform_points(300, &Rect::from_coords(0.0, 0.0, 1_000.0, 1_000.0), 6);
    let r: Vec<Point> = uniform_points(400, &Rect::from_coords(0.0, 0.0, 1_000.0, 1_000.0), 7);
    let k = 3.5;
    let s_scaled: Vec<Point> = s.iter().map(|p| Point::new(p.x * k, p.y * k)).collect();
    let r_scaled: Vec<Point> = r.iter().map(|p| Point::new(p.x * k, p.y * k)).collect();

    let engine_a = engine_from(&s, &r, 64, [5, 9]);
    let engine_b = engine_from(&s_scaled, &r_scaled, 64, [5, 9]);
    let q = Point::new(400.0, 600.0);
    let q_scaled = Point::new(q.x * k, q.y * k);

    let run_a = engine_a
        .run(&Query::tnn(q).algorithm(Algorithm::HybridNn))
        .unwrap();
    let run_b = engine_b
        .run(&Query::tnn(q_scaled).algorithm(Algorithm::HybridNn))
        .unwrap();
    let (a, b) = (run_a.tnn_pair().unwrap(), run_b.tnn_pair().unwrap());
    assert!((a.dist * k - b.dist).abs() < 1e-6);
    assert_eq!(a.s.1, b.s.1);
    assert_eq!(a.r.1, b.r.1);
}

#[test]
fn metamorphic_phases_change_costs_not_answers() {
    // One engine, per-query phase overlays: the answers must be
    // phase-independent while the costs are not.
    let engine = engine_from(&unif(-6.2, 8), &unif(-6.2, 9), 64, [0, 0]);
    let q = Point::new(20_000.0, 18_000.0);
    let mut answers = Vec::new();
    let mut costs = Vec::new();
    for phases in [[0u64, 0], [1_000, 2_000], [77_777, 3], [500, 123_456]] {
        let run = engine
            .run(&Query::tnn(q).algorithm(Algorithm::DoubleNn).phases(&phases))
            .unwrap();
        answers.push(run.total_dist.unwrap());
        costs.push(run.access_time());
    }
    for w in answers.windows(2) {
        assert!((w[0] - w[1]).abs() < 1e-9);
    }
    // Costs genuinely vary with the phases (the programs are long enough
    // that four different alignments cannot all collide).
    let all_equal = costs.windows(2).all(|w| w[0] == w[1]);
    assert!(!all_equal, "access time should depend on channel phases");
}

#[test]
fn tune_in_grows_with_search_radius() {
    // The filter phase must retrieve more pages for larger radii:
    // compare Double-NN (larger radius by construction) with
    // Window-Based on a workload where the difference is material.
    let engine = engine_from(&unif(-7.0, 10), &unif(-5.0, 11), 64, [31, 41]);
    let queries = uniform_points(30, &paper_region(), 5);
    let mut double_filter = 0u64;
    let mut window_filter = 0u64;
    for &q in &queries {
        let d = engine
            .run(&Query::tnn(q).algorithm(Algorithm::DoubleNn))
            .unwrap();
        let w = engine
            .run(&Query::tnn(q).algorithm(Algorithm::WindowBased))
            .unwrap();
        assert!(d.search_radius >= w.search_radius - 1e-9);
        double_filter += d.tune_in_filter();
        window_filter += w.tune_in_filter();
    }
    assert!(double_filter >= window_filter);
}

#[test]
fn double_and_hybrid_share_access_time_windows_differs() {
    // §6.1.1: "Double-NN and Hybrid-NN algorithms always have the same
    // access time" (up to hybrid finishing early after pruning).
    let engine = engine_from(&unif(-5.8, 12), &unif(-5.8, 13), 64, [900, 8_100]);
    let queries = uniform_points(20, &paper_region(), 17);
    for &q in &queries {
        let d = engine
            .run(&Query::tnn(q).algorithm(Algorithm::DoubleNn))
            .unwrap();
        let h = engine
            .run(&Query::tnn(q).algorithm(Algorithm::HybridNn))
            .unwrap();
        assert!(h.access_time() <= d.access_time());
        let w = engine
            .run(&Query::tnn(q).algorithm(Algorithm::WindowBased))
            .unwrap();
        assert!(w.access_time() >= d.access_time());
    }
}

#[test]
fn failure_injection_degenerate_datasets() {
    // Single points, duplicated points, far-away queries.
    let s = vec![Point::new(10.0, 10.0)];
    let r = vec![Point::new(20.0, 10.0); 25]; // 25 duplicates
    let engine = engine_from(&s, &r, 64, [2, 3]);
    for q in [
        Point::new(0.0, 0.0),
        Point::new(1e6, -1e6),
        Point::new(10.0, 10.0),
    ] {
        for alg in [
            Algorithm::WindowBased,
            Algorithm::DoubleNn,
            Algorithm::HybridNn,
        ] {
            let run = engine.run(&Query::tnn(q).algorithm(alg)).unwrap();
            let got = run.total_dist.unwrap();
            let expect = q.dist(Point::new(10.0, 10.0)) + 10.0;
            assert!((got - expect).abs() < 1e-9, "{} at {q:?}", alg.name());
        }
    }
}

#[test]
fn non_finite_queries_are_rejected() {
    let engine = engine_from(&unif(-7.0, 14), &unif(-7.0, 15), 64, [0, 0]);
    let err = engine
        .run(&Query::tnn(Point::new(f64::NAN, 1.0)).algorithm(Algorithm::DoubleNn))
        .unwrap_err();
    assert_eq!(err, tnn_core::TnnError::NonFiniteQuery);
}

#[test]
fn wrong_channel_count_is_rejected() {
    let params = BroadcastParams::new(64);
    let t = Arc::new(
        RTree::build(
            &unif(-7.0, 16),
            params.rtree_params(),
            PackingAlgorithm::Str,
        )
        .unwrap(),
    );
    let engine = QueryEngine::new(MultiChannelEnv::new(vec![t], params, &[0]));
    let err = engine
        .run(&Query::tnn(Point::new(1.0, 1.0)).algorithm(Algorithm::DoubleNn))
        .unwrap_err();
    assert!(matches!(
        err,
        tnn_core::TnnError::WrongChannelCount {
            needed: 2,
            available: 1
        }
    ));
}

#[test]
fn retrieval_toggle_only_affects_costs() {
    let engine = engine_from(&unif(-6.2, 17), &unif(-6.2, 18), 64, [7, 70]);
    let q = Point::new(15_000.0, 22_000.0);
    let base = Query::tnn(q).algorithm(Algorithm::DoubleNn);
    let run_with = engine
        .run(&base.clone().retrieve_answer_objects(true))
        .unwrap();
    let run_without = engine.run(&base.retrieve_answer_objects(false)).unwrap();
    assert_eq!(
        run_with.total_dist.unwrap(),
        run_without.total_dist.unwrap()
    );
    // 16 data pages per object on 64-byte pages, two objects.
    assert_eq!(run_with.tune_in() - run_without.tune_in(), 32);
    assert!(run_with.access_time() >= run_without.access_time());
}

/// Every query kind over 3- and 4-channel environments: exact answers
/// against the chain oracle, per-hop channel costs, and coherent variant
/// routes — the k-ary pipeline end to end.
#[test]
fn k_channel_queries_end_to_end() {
    let params = BroadcastParams::new(64);
    for k in [3usize, 4] {
        let trees: Vec<Arc<RTree>> = (0..k)
            .map(|i| {
                let pts = unif(-5.4, 30 + i as u64);
                Arc::new(RTree::build(&pts, params.rtree_params(), PackingAlgorithm::Str).unwrap())
            })
            .collect();
        let phases: Vec<u64> = (0..k as u64).map(|i| i * 7_777 + 13).collect();
        let engine = QueryEngine::new(MultiChannelEnv::new(trees, params, &phases));
        let queries = uniform_points(8, &paper_region(), 1_000 + k as u64);
        let env = engine.env();
        for &q in &queries {
            let oracle_trees: Vec<&RTree> = env.channels().iter().map(|c| c.tree()).collect();
            let (_, oracle_total) = exact_chain_tnn(q, &oracle_trees);
            for alg in [
                Algorithm::WindowBased,
                Algorithm::DoubleNn,
                Algorithm::HybridNn,
            ] {
                let run = engine.run(&Query::tnn(q).algorithm(alg)).unwrap();
                assert_eq!(run.route.len(), k, "{} at k={k}", alg.name());
                assert_eq!(run.channels.len(), k);
                assert!(
                    (run.total_dist.unwrap() - oracle_total).abs() < 1e-6,
                    "{} at k={k}, query {q:?}",
                    alg.name()
                );
                // Per-hop costs: every channel participated in the filter
                // phase and route stop i indexes channel i.
                for (i, stop) in run.route.iter().enumerate() {
                    assert_eq!(stop.channel, i);
                }
                assert!(run.tune_in() > 0);
            }
            // Chain is the Double-NN pipeline under another name.
            let chain = engine.run(&Query::chain(q)).unwrap();
            assert!((chain.total_dist.unwrap() - oracle_total).abs() < 1e-6);
            // The variants produce coherent k-hop routes.
            let free = engine.run(&Query::order_free(q)).unwrap();
            assert_eq!(free.route.len(), k);
            assert!(free.total_dist.unwrap() <= oracle_total + 1e-6);
            let tour = engine.run(&Query::round_trip(q)).unwrap();
            assert_eq!(tour.route.len(), k);
            assert!(tour.total_dist.unwrap() >= free.total_dist.unwrap() - 1e-6);
        }
    }
}
