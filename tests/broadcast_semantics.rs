//! Integration tests for the broadcast semantics as seen from the query
//! layer: linear-medium constraints, page accounting, and the paper's
//! structural claims about the client model.

use std::sync::Arc;
use tnn::prelude::*;
use tnn_broadcast::PageContent;
use tnn_core::task::{NnSearchTask, WindowQueryTask};
use tnn_core::SearchMode;
use tnn_datasets::{paper_region, unif, uniform_points};
use tnn_rtree::NodeId;

fn channel(pts: &[Point], phase: u64) -> Channel {
    let params = BroadcastParams::new(64);
    let tree = Arc::new(RTree::build(pts, params.rtree_params(), PackingAlgorithm::Str).unwrap());
    Channel::new(tree, params, phase)
}

#[test]
fn every_download_happens_when_the_page_is_on_air() {
    // Replay an NN search and verify each processed arrival slot really
    // carries an index page on the virtual schedule.
    let pts = unif(-6.6, 21);
    let ch = channel(&pts, 987_654);
    let q = Point::new(12_345.0, 23_456.0);
    let mut task = NnSearchTask::new(&ch, SearchMode::Point { q }, AnnMode::Exact, 1_000);
    while let Some(arrival) = task.step() {
        match ch.page_at(arrival) {
            PageContent::IndexNode(_) => {}
            other => panic!("download at {arrival} hit {other:?}, not an index page"),
        }
    }
}

#[test]
fn searches_respect_the_linear_medium() {
    // Arrivals are non-decreasing: the client never rewinds the channel.
    let pts = unif(-5.8, 22);
    let ch = channel(&pts, 5);
    let q = Point::new(30_000.0, 5_000.0);
    let mut task = NnSearchTask::new(&ch, SearchMode::Point { q }, AnnMode::Exact, 0);
    let mut last = 0u64;
    while let Some(a) = task.step() {
        assert!(a >= last);
        last = a;
    }
    // Window queries too.
    let mut w = WindowQueryTask::new(&ch, Circle::new(q, 4_000.0), 0);
    let mut last = 0u64;
    while let Some(a) = w.step() {
        assert!(a >= last);
        last = a;
    }
}

#[test]
fn tune_in_counts_exactly_the_downloads() {
    let pts = unif(-6.2, 23);
    let ch = channel(&pts, 77);
    let q = Point::new(20_000.0, 20_000.0);
    let mut task = NnSearchTask::new(&ch, SearchMode::Point { q }, AnnMode::Exact, 0);
    let mut downloads = 0u64;
    while task.step().is_some() {
        downloads += 1;
    }
    assert_eq!(task.tuner().pages, downloads);
}

#[test]
fn nn_search_never_downloads_more_than_the_index_length() {
    let pts = unif(-5.4, 24);
    let ch = channel(&pts, 0);
    for q in uniform_points(10, &paper_region(), 31) {
        let mut task = NnSearchTask::new(&ch, SearchMode::Point { q }, AnnMode::Exact, 0);
        task.run_to_completion();
        assert!(task.tuner().pages <= ch.layout().index_len());
    }
}

#[test]
fn root_wait_is_bounded_by_one_bucket() {
    let pts = unif(-6.6, 25);
    let ch = channel(&pts, 123);
    for start in [0u64, 999, 12_345, 999_999] {
        let arrival = ch.next_root_arrival(start);
        assert!(arrival - start < ch.layout().bucket_len());
        assert_eq!(ch.page_at(arrival), PageContent::IndexNode(NodeId::ROOT));
    }
}

#[test]
fn larger_pages_reduce_tune_in_pages() {
    // Table 2's page-capacity sweep: with bigger pages, fewer pages are
    // needed for the same query (fanout grows, height shrinks).
    let s = unif(-5.8, 26);
    let r = unif(-5.8, 27);
    let q = Point::new(19_000.0, 21_000.0);
    let mut tune_ins = Vec::new();
    for cap in [64usize, 128, 256, 512] {
        let params = BroadcastParams::new(cap);
        let st = Arc::new(RTree::build(&s, params.rtree_params(), PackingAlgorithm::Str).unwrap());
        let rt = Arc::new(RTree::build(&r, params.rtree_params(), PackingAlgorithm::Str).unwrap());
        let env = MultiChannelEnv::new(vec![st, rt], params, &[3, 33]);
        let run = QueryEngine::new(env)
            .run(&Query::tnn(q).algorithm(Algorithm::DoubleNn))
            .unwrap();
        tune_ins.push(run.tune_in());
    }
    for w in tune_ins.windows(2) {
        assert!(
            w[1] <= w[0],
            "tune-in should not grow with page capacity: {tune_ins:?}"
        );
    }
}

#[test]
fn interleave_m_trades_cycle_length_for_index_frequency() {
    let pts = unif(-5.8, 28);
    let params_m1 = tnn_broadcast::BroadcastParams {
        page_capacity: 64,
        interleave_m: 1,
        data_content_bytes: 1024,
    };
    let params_m8 = tnn_broadcast::BroadcastParams {
        interleave_m: 8,
        ..params_m1
    };
    let tree =
        Arc::new(RTree::build(&pts, params_m1.rtree_params(), PackingAlgorithm::Str).unwrap());
    let ch1 = Channel::new(Arc::clone(&tree), params_m1, 0);
    let ch8 = Channel::new(tree, params_m8, 0);
    // More index copies per cycle → shorter expected root wait…
    assert!(ch8.layout().bucket_len() < ch1.layout().bucket_len());
    // …at the price of a longer total cycle (more replicated index pages).
    assert!(ch8.layout().cycle_len() > ch1.layout().cycle_len());
}
